"""Seeded, composable fault injection for the simulated platform.

The paper's latency model assumes every posted batch completes and every
answer arrives; real platforms exhibit stragglers, abandoned HITs, lost
answers, duplicate submissions and the occasional whole-platform outage —
exactly the variability the paper's ``L(q)`` measurements smooth over
(Section 6.1).  This module makes that variability injectable:

* :class:`FaultProfile` — a frozen bundle of fault probabilities and
  magnitudes (all zero by default).  Named presets are available through
  :func:`fault_profile_by_name` for the CLI's ``--faults`` flag.
* :class:`FaultyPlatform` — wraps any :class:`~repro.crowd.platform.Platform`
  and perturbs each :meth:`post_batch` result according to the profile.
  Faults draw from a *dedicated* RNG, so a zero profile leaves the wrapped
  platform byte-identical to the bare one (same answers, completion time
  and stats — a regression test enforces this), and a seeded nonzero
  profile replays identically run over run.
* :class:`RetryPolicy` — deadline / max-attempts / exponential-backoff
  parameters consumed by :class:`repro.crowd.rwl.ReliableWorkerLayer` when
  it re-posts unanswered questions.

Fault taxonomy (applied in this fixed order for reproducibility):

1. **outage** — the whole batch is swallowed before any worker sees it;
   :class:`~repro.errors.PlatformOutageError` is raised carrying the
   simulated seconds the poster wasted before detecting the loss.
2. **abandonment** — a worker picks a question up and walks away
   mid-question; the answer is never submitted.
3. **drop** — the answer is submitted but lost in flight.
4. **straggler** — the answer arrives, but ``straggler_multiplier`` times
   later than it would have.
5. **duplicate** — the answer is submitted twice (the copy arrives up to
   ``duplicate_delay`` seconds later).

See ``docs/robustness.md`` for the full semantics and a worked example.
"""

from __future__ import annotations

import dataclasses
import logging
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.crowd.platform import (
    BatchResult,
    Platform,
    PlatformStats,
    WorkerAnswer,
)
from repro.errors import InvalidParameterError, PlatformOutageError
from repro.obs.events import FaultInjected
from repro.obs.metrics import get_registry
from repro.obs.spans import current_span_id
from repro.obs.tracer import Tracer, current_tracer

logger = logging.getLogger(__name__)


@dataclass(frozen=True)
class FaultProfile:
    """Probabilities and magnitudes of the injectable fault families.

    All probabilities default to zero, so ``FaultProfile()`` is the
    identity profile.  Per-answer probabilities are evaluated
    independently per submitted answer; ``outage_prob`` is evaluated once
    per posted batch.

    Attributes:
        abandon_prob: per-answer probability the worker abandons the
            question mid-answer (the answer never arrives).
        drop_prob: per-answer probability the submitted answer is lost.
        straggler_prob: per-answer probability the answer is served by a
            straggler.
        straggler_multiplier: how many times later a straggler's answer
            arrives (> 1).
        duplicate_prob: per-answer probability of a duplicate submission.
        duplicate_delay: maximum seconds after the original at which the
            duplicate arrives (uniformly sampled).
        outage_prob: per-batch probability the platform swallows the batch.
        outage_detection_time: simulated seconds the poster waits before
            concluding a swallowed batch is lost.
        outage_window: optional ``(start, end)`` simulated-time interval
            during which the platform is *deterministically* down: every
            batch posted while the platform clock is in ``[start, end)``
            is swallowed, with no fault-RNG draw.  Models a sustained
            outage (maintenance window, payment freeze) rather than
            transient flakiness; the circuit breaker exists for exactly
            this shape.
    """

    abandon_prob: float = 0.0
    drop_prob: float = 0.0
    straggler_prob: float = 0.0
    straggler_multiplier: float = 4.0
    duplicate_prob: float = 0.0
    duplicate_delay: float = 60.0
    outage_prob: float = 0.0
    outage_detection_time: float = 600.0
    outage_window: Optional[Tuple[float, float]] = None

    def __post_init__(self) -> None:
        for name in (
            "abandon_prob",
            "drop_prob",
            "straggler_prob",
            "duplicate_prob",
            "outage_prob",
        ):
            probability = getattr(self, name)
            if not 0.0 <= probability <= 1.0:
                raise InvalidParameterError(
                    f"{name} must be in [0, 1], got {probability}"
                )
        if self.straggler_multiplier <= 1.0:
            raise InvalidParameterError(
                f"straggler_multiplier must be > 1, got "
                f"{self.straggler_multiplier}"
            )
        if self.duplicate_delay < 0:
            raise InvalidParameterError(
                f"duplicate_delay must be >= 0, got {self.duplicate_delay}"
            )
        if self.outage_detection_time < 0:
            raise InvalidParameterError(
                f"outage_detection_time must be >= 0, got "
                f"{self.outage_detection_time}"
            )
        if self.outage_window is not None:
            window = tuple(self.outage_window)
            if len(window) != 2:
                raise InvalidParameterError(
                    f"outage_window must be a (start, end) pair, got "
                    f"{self.outage_window!r}"
                )
            start, end = window
            if not 0 <= start < end:
                raise InvalidParameterError(
                    f"outage_window must satisfy 0 <= start < end, got "
                    f"({start}, {end})"
                )
            object.__setattr__(
                self, "outage_window", (float(start), float(end))
            )

    @property
    def is_zero(self) -> bool:
        """Whether no fault can ever fire under this profile."""
        return (
            self.abandon_prob == 0.0
            and self.drop_prob == 0.0
            and self.straggler_prob == 0.0
            and self.duplicate_prob == 0.0
            and self.outage_prob == 0.0
            and self.outage_window is None
        )

    @classmethod
    def none(cls) -> "FaultProfile":
        """The identity profile (no faults)."""
        return cls()


#: Named presets for the CLI and experiments; "none" is the identity.
_PROFILES: Dict[str, FaultProfile] = {
    "none": FaultProfile(),
    "mild": FaultProfile(
        abandon_prob=0.02,
        drop_prob=0.02,
        straggler_prob=0.05,
        straggler_multiplier=3.0,
        duplicate_prob=0.02,
    ),
    "lossy": FaultProfile(abandon_prob=0.05, drop_prob=0.15),
    "stragglers": FaultProfile(
        straggler_prob=0.25, straggler_multiplier=6.0
    ),
    "outages": FaultProfile(
        outage_prob=0.15,
        drop_prob=0.02,
        outage_detection_time=600.0,
    ),
    "sustained": FaultProfile(
        outage_window=(0.0, 3600.0),
        outage_detection_time=600.0,
    ),
    "severe": FaultProfile(
        abandon_prob=0.10,
        drop_prob=0.15,
        straggler_prob=0.20,
        straggler_multiplier=6.0,
        duplicate_prob=0.10,
        outage_prob=0.10,
    ),
}


def available_fault_profiles() -> List[str]:
    """Names accepted by :func:`fault_profile_by_name` (CLI ``--faults``)."""
    return sorted(_PROFILES)


def fault_profile_by_name(name: str) -> FaultProfile:
    """Look up a named fault profile.

    Raises:
        InvalidParameterError: for unknown names (the message lists the
            available ones).
    """
    try:
        return _PROFILES[name]
    except KeyError:
        raise InvalidParameterError(
            f"unknown fault profile {name!r}; available: "
            f"{', '.join(available_fault_profiles())}"
        ) from None


@dataclass
class FaultStats:
    """Cumulative counts of the faults a :class:`FaultyPlatform` injected."""

    batches_seen: int = 0
    outages: int = 0
    abandoned: int = 0
    dropped: int = 0
    stragglers: int = 0
    duplicates: int = 0

    @property
    def total_faults(self) -> int:
        return (
            self.outages
            + self.abandoned
            + self.dropped
            + self.stragglers
            + self.duplicates
        )

    def as_dict(self) -> Dict[str, int]:
        return dataclasses.asdict(self)


class FaultyPlatform(Platform):
    """A :class:`~repro.crowd.platform.Platform` decorator injecting faults.

    The wrapped platform runs untouched; faults are applied to its
    :class:`~repro.crowd.platform.BatchResult` afterwards, drawing only
    from the dedicated ``fault_rng``.  Two consequences, both load-bearing
    for the test suite:

    * with a zero :class:`FaultProfile` the wrapper is byte-identical to
      the bare platform (no fault RNG draw ever happens, and the inner
      platform consumes exactly the same random stream);
    * the same (inner seed, fault seed, profile) triple replays the exact
      same faults.

    Args:
        inner: the platform to wrap (usually a
            :class:`~repro.crowd.platform.SimulatedPlatform`).
        profile: which faults to inject, and how hard.
        fault_rng: randomness source for fault decisions only.
        tracer: structured-event tracer; ``None`` uses the ambient one.
    """

    def __init__(
        self,
        inner: Platform,
        profile: FaultProfile,
        fault_rng: np.random.Generator,
        tracer: Optional[Tracer] = None,
    ) -> None:
        self.inner = inner
        self.profile = profile
        self._fault_rng = fault_rng
        self._tracer = tracer
        self.fault_stats = FaultStats()
        #: Simulated "now" used to evaluate ``profile.outage_window``.
        #: The poster (e.g. the service scheduler) advances it; direct
        #: users of the platform can leave it at 0.
        self.clock: float = 0.0

    def set_clock(self, now: float) -> None:
        """Advance the simulated clock gating ``outage_window`` checks."""
        self.clock = float(now)

    @property
    def stats(self) -> PlatformStats:
        """The wrapped platform's cumulative usage statistics."""
        return self.inner.stats

    def post_batch(self, questions: Sequence) -> BatchResult:
        """Post *questions* on the wrapped platform, then inject faults.

        Raises:
            PlatformOutageError: when an injected outage swallows the
                batch (the inner platform is never invoked, so no budget
                or RNG state is consumed).
        """
        profile = self.profile
        rng = self._fault_rng
        batch_index = self.fault_stats.batches_seen
        self.fault_stats.batches_seen += 1
        window = profile.outage_window
        if questions and window is not None and (
            window[0] <= self.clock < window[1]
        ):
            # Deterministic sustained outage: no fault-RNG draw, so the
            # random fault stream stays aligned with a window-free run.
            self.fault_stats.outages += 1
            self._record_fault("outage", len(questions), batch_index)
            logger.debug(
                "batch %d: sustained outage window swallowed %d question(s)",
                batch_index,
                len(questions),
            )
            raise PlatformOutageError(
                f"platform down for maintenance until t={window[1]:g}s; "
                f"batch of {len(questions)} question(s) swallowed",
                wasted_seconds=profile.outage_detection_time,
            )
        if questions and profile.outage_prob > 0 and (
            rng.random() < profile.outage_prob
        ):
            self.fault_stats.outages += 1
            self._record_fault("outage", len(questions), batch_index)
            logger.debug(
                "batch %d: injected outage swallowed %d question(s)",
                batch_index,
                len(questions),
            )
            raise PlatformOutageError(
                f"injected platform outage swallowed a batch of "
                f"{len(questions)} question(s)",
                wasted_seconds=profile.outage_detection_time,
            )
        result = self.inner.post_batch(questions)
        if profile.is_zero or not result.worker_answers:
            return result
        answers = list(result.worker_answers)
        answers, n_abandoned = self._remove(
            answers, profile.abandon_prob, rng
        )
        answers, n_dropped = self._remove(answers, profile.drop_prob, rng)
        n_stragglers = 0
        if profile.straggler_prob > 0 and answers:
            delayed: List[WorkerAnswer] = []
            for answer in answers:
                if rng.random() < profile.straggler_prob:
                    n_stragglers += 1
                    answer = dataclasses.replace(
                        answer,
                        submit_time=answer.submit_time
                        * profile.straggler_multiplier,
                    )
                delayed.append(answer)
            answers = delayed
        n_duplicates = 0
        if profile.duplicate_prob > 0 and answers:
            copies: List[WorkerAnswer] = []
            for answer in answers:
                if rng.random() < profile.duplicate_prob:
                    n_duplicates += 1
                    copies.append(
                        dataclasses.replace(
                            answer,
                            submit_time=answer.submit_time
                            + rng.uniform(0.0, profile.duplicate_delay),
                        )
                    )
            answers.extend(copies)
        self.fault_stats.abandoned += n_abandoned
        self.fault_stats.dropped += n_dropped
        self.fault_stats.stragglers += n_stragglers
        self.fault_stats.duplicates += n_duplicates
        for fault, count in (
            ("abandonment", n_abandoned),
            ("drop", n_dropped),
            ("straggler", n_stragglers),
            ("duplicate", n_duplicates),
        ):
            if count:
                self._record_fault(fault, count, batch_index)
        completion = max(
            (answer.submit_time for answer in answers), default=0.0
        )
        return BatchResult(
            worker_answers=tuple(answers),
            completion_time=completion,
            n_workers=len({answer.worker_id for answer in answers}),
        )

    @staticmethod
    def _remove(
        answers: List[WorkerAnswer],
        probability: float,
        rng: np.random.Generator,
    ) -> Tuple[List[WorkerAnswer], int]:
        """Independently delete each answer with *probability*."""
        if probability == 0 or not answers:
            return answers, 0
        survivors = [a for a in answers if rng.random() >= probability]
        return survivors, len(answers) - len(survivors)

    def _record_fault(self, fault: str, count: int, batch_index: int) -> None:
        get_registry().counter(f"faults.{fault}").inc(count)
        tracer = self._tracer if self._tracer is not None else current_tracer()
        if tracer.enabled:
            tracer.emit(
                FaultInjected(
                    fault=fault,
                    n_affected=count,
                    batch_index=batch_index,
                    span_id=current_span_id(),
                )
            )


@dataclass(frozen=True)
class RetryPolicy:
    """When and how the RWL re-posts unanswered questions.

    A *retry* is scheduled whenever a platform batch comes back with some
    distinct questions unanswered (lost/abandoned answers) or the whole
    batch was swallowed by an outage.  The retry re-posts only the
    unanswered questions (times the RWL's repetition factor) after an
    exponential-backoff wait.

    Attributes:
        max_attempts: total posting attempts per round, the first included
            (>= 1; ``1`` disables retries).
        deadline: cap on the round's accumulated simulated latency; a
            retry that cannot *start* before the deadline is abandoned and
            the round degrades gracefully (``None`` = no deadline).
        base_backoff: seconds waited before the first retry.
        backoff_multiplier: exponential growth factor of the backoff.
        max_backoff: ceiling on a single backoff wait.
        jitter: +/- fraction of the backoff randomized per wait (0 = none).
    """

    max_attempts: int = 3
    deadline: Optional[float] = None
    base_backoff: float = 60.0
    backoff_multiplier: float = 2.0
    max_backoff: float = 900.0
    jitter: float = 0.1

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise InvalidParameterError(
                f"max_attempts must be >= 1, got {self.max_attempts}"
            )
        if self.deadline is not None and self.deadline < 0:
            raise InvalidParameterError(
                f"deadline must be >= 0, got {self.deadline}"
            )
        if self.base_backoff < 0:
            raise InvalidParameterError(
                f"base_backoff must be >= 0, got {self.base_backoff}"
            )
        if self.backoff_multiplier < 1:
            raise InvalidParameterError(
                f"backoff_multiplier must be >= 1, got "
                f"{self.backoff_multiplier}"
            )
        if self.max_backoff < self.base_backoff:
            raise InvalidParameterError(
                f"max_backoff {self.max_backoff} < base_backoff "
                f"{self.base_backoff}"
            )
        if not 0.0 <= self.jitter <= 1.0:
            raise InvalidParameterError(
                f"jitter must be in [0, 1], got {self.jitter}"
            )

    def backoff_seconds(
        self, retry_index: int, rng: np.random.Generator
    ) -> float:
        """Wait before the ``retry_index``-th retry (1-based), with jitter."""
        if retry_index < 1:
            raise InvalidParameterError(
                f"retry_index must be >= 1, got {retry_index}"
            )
        raw = min(
            self.max_backoff,
            self.base_backoff * self.backoff_multiplier ** (retry_index - 1),
        )
        if self.jitter == 0 or raw == 0:
            return raw
        # Clamp *after* jittering: max_backoff documents a hard ceiling,
        # so upward jitter must never push a wait past it.
        jittered = raw * (1.0 + self.jitter * rng.uniform(-1.0, 1.0))
        return min(self.max_backoff, jittered)
