"""Worker-pool model for the simulated crowdsourcing platform.

The model captures the MTurk dynamics Section 6.1 describes qualitatively:

* posting a batch has a large fixed overhead before the first worker
  discovers it (the delta ~ 239 s intercept of the paper's fit);
* larger batches attract more workers (the paper saw latency stay flat from
  320 to 1280 questions because "more workers are attracted as the batch
  size increases ... the increased parallelism compensates");
* there is a saturation point: once the batch outgrows the pool of
  interested workers, latency grows with batch size.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.errors import InvalidParameterError


@dataclass(frozen=True)
class WorkerPoolConfig:
    """Tunable parameters of the simulated worker pool.

    Defaults are calibrated so that the emergent latency roughly matches the
    paper's measured MTurk behaviour for the car-comparison task (about
    3 seconds per answer, ~240 s of fixed overhead, a few dozen interested
    workers at most).

    Attributes:
        mean_service_time: average seconds a worker spends per question.
        service_sigma: lognormal sigma of the per-question service time.
        base_workers: workers interested regardless of batch size.
        questions_per_extra_worker: one additional worker is attracted for
            every this-many questions in the batch.
        max_workers: saturation cap — the total pool of interested workers.
        discovery_mean: mean seconds until the first worker discovers a
            freshly posted batch.
        discovery_sigma: lognormal sigma of the discovery delay.
        arrival_spread: seconds over which the remaining attracted workers
            trickle in after the first discovery.
        attention_span: questions a worker answers before moving on to other
            tasks (``None`` = stays until the batch is drained).
        worker_speed_sigma: heterogeneity of the workforce — each worker
            gets a persistent lognormal speed multiplier with this sigma
            (0 = all workers equally fast).  Fast workers naturally answer
            more questions of a batch.
    """

    mean_service_time: float = 3.0
    service_sigma: float = 0.4
    base_workers: int = 1
    questions_per_extra_worker: float = 16.0
    max_workers: int = 35
    discovery_mean: float = 200.0
    discovery_sigma: float = 0.35
    arrival_spread: float = 120.0
    attention_span: Optional[int] = None
    worker_speed_sigma: float = 0.0

    def __post_init__(self) -> None:
        if self.mean_service_time <= 0:
            raise InvalidParameterError("mean_service_time must be > 0")
        if self.service_sigma < 0:
            raise InvalidParameterError("service_sigma must be >= 0")
        if self.base_workers < 1:
            raise InvalidParameterError("base_workers must be >= 1")
        if self.questions_per_extra_worker <= 0:
            raise InvalidParameterError("questions_per_extra_worker must be > 0")
        if self.max_workers < self.base_workers:
            raise InvalidParameterError("max_workers must be >= base_workers")
        if self.discovery_mean < 0 or self.arrival_spread < 0:
            raise InvalidParameterError("delays must be >= 0")
        if self.attention_span is not None and self.attention_span < 1:
            raise InvalidParameterError("attention_span must be >= 1 or None")
        if self.worker_speed_sigma < 0:
            raise InvalidParameterError("worker_speed_sigma must be >= 0")

    def attracted_workers(self, batch_size: int) -> int:
        """How many workers a batch of *batch_size* questions attracts."""
        if batch_size < 0:
            raise InvalidParameterError("batch_size must be >= 0")
        extra = int(batch_size / self.questions_per_extra_worker)
        return max(1, min(self.max_workers, self.base_workers + extra))

    def sample_discovery_time(self, rng: np.random.Generator) -> float:
        """Seconds until the first worker finds the batch (lognormal)."""
        if self.discovery_mean == 0:
            return 0.0
        mu = math.log(self.discovery_mean) - self.discovery_sigma**2 / 2.0
        return float(rng.lognormal(mean=mu, sigma=self.discovery_sigma))

    def sample_arrival_times(
        self, n_workers: int, rng: np.random.Generator
    ) -> List[float]:
        """Arrival times (seconds after posting) for *n_workers* workers.

        The first worker arrives after the discovery delay; the rest arrive
        uniformly over the following ``arrival_spread`` seconds.
        """
        if n_workers < 1:
            raise InvalidParameterError("n_workers must be >= 1")
        first = self.sample_discovery_time(rng)
        if n_workers == 1:
            return [first]
        later = first + rng.uniform(0.0, self.arrival_spread, size=n_workers - 1)
        return sorted([first] + [float(t) for t in later])

    def sample_service_time(self, rng: np.random.Generator) -> float:
        """Seconds one worker takes to answer one question (lognormal)."""
        if self.service_sigma == 0:
            return self.mean_service_time
        mu = math.log(self.mean_service_time) - self.service_sigma**2 / 2.0
        return float(rng.lognormal(mean=mu, sigma=self.service_sigma))

    def sample_worker_speed(self, rng: np.random.Generator) -> float:
        """Persistent speed multiplier for one worker (mean 1.0).

        A worker's every answer takes ``multiplier`` times the sampled
        service time; values below 1 are fast workers.
        """
        if self.worker_speed_sigma == 0:
            return 1.0
        mu = -self.worker_speed_sigma**2 / 2.0
        return float(rng.lognormal(mean=mu, sigma=self.worker_speed_sigma))
