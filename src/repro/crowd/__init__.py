"""Simulated crowdsourcing substrate: ground truth, workers, platform, RWL."""

from repro.crowd.breaker import (
    BreakerState,
    CircuitBreaker,
    CircuitBreakerConfig,
    RoundDecision,
)
from repro.crowd.diurnal import DayNightCycle, DiurnalPlatform
from repro.crowd.error_models import (
    DistanceSensitiveError,
    ErrorModel,
    PerfectWorkers,
    UniformError,
)
from repro.crowd.faults import (
    FaultProfile,
    FaultStats,
    FaultyPlatform,
    RetryPolicy,
    available_fault_profiles,
    fault_profile_by_name,
)
from repro.crowd.ground_truth import GroundTruth
from repro.crowd.platform import (
    BatchResult,
    Platform,
    SimulatedPlatform,
    WorkerAnswer,
)
from repro.crowd.rwl import ReliableWorkerLayer, RWLResult
from repro.crowd.workers import WorkerPoolConfig

__all__ = [
    "GroundTruth",
    "DayNightCycle",
    "DiurnalPlatform",
    "ErrorModel",
    "PerfectWorkers",
    "UniformError",
    "DistanceSensitiveError",
    "WorkerPoolConfig",
    "Platform",
    "SimulatedPlatform",
    "BatchResult",
    "WorkerAnswer",
    "FaultProfile",
    "FaultStats",
    "FaultyPlatform",
    "RetryPolicy",
    "available_fault_profiles",
    "fault_profile_by_name",
    "ReliableWorkerLayer",
    "RWLResult",
    "BreakerState",
    "CircuitBreaker",
    "CircuitBreakerConfig",
    "RoundDecision",
]
