"""Simulated crowdsourcing substrate: ground truth, workers, platform, RWL."""

from repro.crowd.diurnal import DayNightCycle, DiurnalPlatform
from repro.crowd.error_models import (
    DistanceSensitiveError,
    ErrorModel,
    PerfectWorkers,
    UniformError,
)
from repro.crowd.ground_truth import GroundTruth
from repro.crowd.platform import BatchResult, SimulatedPlatform, WorkerAnswer
from repro.crowd.rwl import ReliableWorkerLayer, RWLResult
from repro.crowd.workers import WorkerPoolConfig

__all__ = [
    "GroundTruth",
    "DayNightCycle",
    "DiurnalPlatform",
    "ErrorModel",
    "PerfectWorkers",
    "UniformError",
    "DistanceSensitiveError",
    "WorkerPoolConfig",
    "SimulatedPlatform",
    "BatchResult",
    "WorkerAnswer",
    "ReliableWorkerLayer",
    "RWLResult",
]
