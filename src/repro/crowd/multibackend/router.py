"""Capacity-aware routing of shared rounds across a federated fleet.

The scheduler packs one shared round per tick; with a fleet configured the
round is *split* across backends instead of posted to one platform.  The
split is an assignment problem in the spirit of quoracle's load/latency
search: place each query's question block on the backend that minimizes
the predicted round makespan, subject to per-backend capacity limits —
then post the per-backend sub-batches (conceptually in parallel, so the
tick's latency is the *maximum* over the participating backends).

Routing policies (``ServiceConfig.routing`` / ``serve --routing``):

* ``latency`` (default) — greedy water-filling over predicted round
  latency: each unit goes to the backend whose predicted ``L(q)`` after
  taking the unit is smallest.
* ``least-loaded`` — balance the round by occupancy (capacity fraction
  where a capacity is set, absolute assigned questions otherwise).
* ``weighted-price`` — cheapest backend first (predicted latency as the
  tie-break), spilling to pricier backends only on capacity.

Failover is breaker-driven and per-backend: an OPEN backend is excluded
from the split (its share reroutes to the survivors), a HALF_OPEN backend
receives at most ``PROBE_QUESTIONS`` as a probe, and only when *every*
backend defers does the router defer the whole round.  Units are kept
whole when any backend can take them (one query's round on one platform
keeps worker-answer locality); a unit larger than every remaining slot is
split across backends by remaining capacity.

Determinism: backends are always iterated in spec order, every tie breaks
toward the lower backend index, and the only RNG the router ever touches
is each backend's own (inside its RWL).  The scheduler journals one
``route`` record per multi-backend tick, and recovery replays the exact
same decisions — bit-identically — because the router is a pure function
of (fleet state, round content).
"""

from __future__ import annotations

import logging
import math
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Deque, Dict, List, Optional, Sequence, Tuple

from repro.crowd.breaker import RoundDecision
from repro.crowd.multibackend.backend import Backend
from repro.crowd.rwl import RWLResult
from repro.errors import InvalidParameterError, PlatformOutageError
from repro.obs.events import RoundHedged
from repro.obs.metrics import get_registry, labeled_name
from repro.obs.spans import current_span, emit_span, span_scope
from repro.obs.stats import percentile
from repro.obs.tracer import current_tracer
from repro.types import Answer, Question

logger = logging.getLogger(__name__)

#: Accepted ``ServiceConfig.routing`` / ``--routing`` policy names.
ROUTING_POLICIES: Tuple[str, ...] = ("latency", "least-loaded", "weighted-price")

#: Distinct-question cap of a half-open backend's probe sub-batch.
PROBE_QUESTIONS = 8

#: Effectively-unbounded stand-in for a ``capacity=None`` backend.
_UNBOUNDED = 10**12


@dataclass(frozen=True)
class HedgeConfig:
    """Tail-protection hedging for routed rounds.

    A sub-batch whose predicted latency exceeds ``hedge_after`` is
    *mirrored* to the predicted-fastest other backend with room; the
    first answer wins and the loser's posted copies are accounted as
    ``hedge_waste``.  With ``hedge_after`` unset the threshold is
    derived online from the fleet's observed sub-round latencies: the
    nearest-rank ``percentile`` over a sliding ``window``, scaled by
    ``factor``, once ``min_samples`` latencies have been observed.

    ``hedge_after=math.inf`` never hedges — the run is bit-identical to
    an unhedged one (pinned by a property test).

    Attributes:
        hedge_after: explicit hedge threshold in seconds (``None`` =
            derive from the fleet p-th percentile).
        percentile: percentile of the observed-latency window used when
            deriving the threshold.
        factor: multiplier applied to the derived percentile.
        min_samples: observed sub-rounds required before the derived
            threshold arms (explicit thresholds arm immediately).
        window: sliding-window size of observed sub-round latencies.
    """

    hedge_after: Optional[float] = None
    percentile: float = 95.0
    factor: float = 1.0
    min_samples: int = 8
    window: int = 64

    def __post_init__(self) -> None:
        if self.hedge_after is not None and not self.hedge_after > 0:
            raise InvalidParameterError(
                f"hedge_after must be > 0 seconds, got {self.hedge_after}"
            )
        if not 0.0 < self.percentile <= 100.0:
            raise InvalidParameterError(
                f"percentile must be in (0, 100], got {self.percentile}"
            )
        if not self.factor > 0:
            raise InvalidParameterError(
                f"factor must be > 0, got {self.factor}"
            )
        if self.min_samples < 1:
            raise InvalidParameterError(
                f"min_samples must be >= 1, got {self.min_samples}"
            )
        if self.window < self.min_samples:
            raise InvalidParameterError(
                f"window ({self.window}) must be >= min_samples "
                f"({self.min_samples})"
            )


@dataclass(frozen=True)
class _SubRound:
    """What posting one backend's sub-batch produced (or cost)."""

    ok: bool
    latency: float
    answers: Tuple[Answer, ...] = ()
    posted_copies: int = 0


@dataclass(frozen=True)
class RouterAdmission:
    """Outcome of :meth:`CapacityAwareRouter.before_round`.

    ``defer`` is true only when every backend's breaker defers; then
    ``resume_at`` is the earliest cooldown expiry across the fleet.
    ``probe`` is true only for a *solo* fleet whose breaker is half-open
    — the scheduler then packs a single probe query, exactly like the
    router-less breaker path (part of the solo bit-identity contract);
    multi-backend fleets probe per backend via sub-batch quotas instead.
    """

    defer: bool
    resume_at: float = 0.0
    probe: bool = False


@dataclass(frozen=True)
class RouteDecision:
    """One tick's routing decision (journaled; the failover audit trail).

    Attributes:
        tick: the scheduler tick the decision belongs to.
        assignments: distinct questions assigned per backend name (every
            configured backend appears, zeros included).
        states: breaker state label per backend at decision time.
        unposted: distinct questions no backend had room for (they stay
            outstanding and are re-routed next tick — *not* a fault).
        hedges: hedged primaries this tick, ``{primary: mirror}`` backend
            names (empty when hedging is off — the journal record is then
            byte-identical to an unhedged run's).
    """

    tick: int
    assignments: Dict[str, int]
    states: Dict[str, str]
    unposted: int
    hedges: Dict[str, str] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, object]:
        payload: Dict[str, object] = {
            "tick": self.tick,
            "assignments": dict(self.assignments),
            "states": dict(self.states),
            "unposted": self.unposted,
        }
        if self.hedges:
            payload["hedges"] = dict(self.hedges)
        return payload


@dataclass(frozen=True)
class RoundOutcome:
    """What one routed shared round produced, aggregated over the fleet.

    Attributes:
        answers: all answers, concatenated in backend order.
        latency: the round's simulated latency — the max over posted
            backends (sub-batches run in parallel).
        n_posted: distinct questions successfully posted (assigned to a
            backend that returned a batch).
        unposted: questions no backend had capacity for this round.
        total_outage: every posting backend suffered a whole-batch
            outage (mirrors the single-platform ``PlatformOutageError``
            path in the scheduler).
        decision: the routing decision that produced this outcome.
        backend_latencies: per-backend round latency (posted backends
            only), keyed by name.
        outaged: names of backends whose sub-batch was swallowed.
        hedged_questions: distinct questions that were mirrored to a
            hedge backend this round (attribution labels their chunks
            ``hedge``); empty when hedging is off.
    """

    answers: Tuple[Answer, ...]
    latency: float
    n_posted: int
    unposted: frozenset
    total_outage: bool
    decision: RouteDecision
    backend_latencies: Dict[str, float]
    outaged: Tuple[str, ...]
    hedged_questions: frozenset = frozenset()


class CapacityAwareRouter:
    """Split each shared round across a fleet of :class:`Backend` s.

    Args:
        backends: the live fleet, spec order (see
            :func:`~repro.crowd.multibackend.backend.build_backends`).
        policy: one of :data:`ROUTING_POLICIES`.
        hedge: optional :class:`HedgeConfig` enabling tail-protection
            mirroring of predicted-slow sub-batches.

    A single-backend fleet short-circuits: no backend spans, no route
    journal records, everything posted to the lone backend — the
    differential regression test pins this down as bit-identical to the
    router-less scheduler.  Hedging likewise never fires on a solo fleet
    (there is no "next-best backend" to mirror to).
    """

    def __init__(
        self,
        backends: Sequence[Backend],
        policy: str = "latency",
        hedge: Optional[HedgeConfig] = None,
    ) -> None:
        if policy not in ROUTING_POLICIES:
            raise InvalidParameterError(
                f"unknown routing policy {policy!r}; available: "
                f"{', '.join(ROUTING_POLICIES)}"
            )
        if not backends:
            raise InvalidParameterError("the router needs >= 1 backend")
        self.backends: List[Backend] = list(backends)
        self.policy = policy
        self.hedge = hedge
        #: Set by the brownout controller (level 3 disables hedging).
        self.hedging_suspended = False
        #: Hedged sub-batches posted / mirror wins / wasted posted copies.
        self.hedges = 0
        self.hedge_wins = 0
        self.hedge_waste = 0
        self._latency_window: Deque[float] = deque(
            maxlen=hedge.window if hedge is not None else 1
        )
        self._by_name = {b.name: b for b in self.backends}
        self._decisions: Optional[Dict[int, RoundDecision]] = None

    @property
    def solo(self) -> bool:
        """Whether the fleet degenerates to a single backend."""
        return len(self.backends) == 1

    def backend(self, name: str) -> Backend:
        """Look up a backend by name."""
        return self._by_name[name]

    # ------------------------------------------------------------------
    # Breaker admission (the scheduler's per-tick gate)
    # ------------------------------------------------------------------
    def before_round(self, now: float) -> RouterAdmission:
        """Ask every backend's breaker about the round starting at *now*.

        Decisions are stashed for the immediately following
        :meth:`post_round`; an all-defer fleet yields a global defer.
        """
        decisions: Dict[int, RoundDecision] = {}
        for backend in self.backends:
            if backend.breaker is None:
                decisions[backend.index] = RoundDecision.POST
            else:
                decisions[backend.index] = backend.breaker.before_round(now)
        if all(d is RoundDecision.DEFER for d in decisions.values()):
            resume_at = min(
                backend.breaker.defer_target(now)
                for backend in self.backends
                if backend.breaker is not None
            )
            self._decisions = None
            return RouterAdmission(defer=True, resume_at=resume_at)
        self._decisions = decisions
        probe = self.solo and decisions[
            self.backends[0].index
        ] is RoundDecision.PROBE
        return RouterAdmission(defer=False, probe=probe)

    def note_time(self, now: float) -> None:
        """Stamp every breaker that opened clock-lessly during the round."""
        for backend in self.backends:
            if backend.breaker is not None:
                backend.breaker.note_time(now)

    def breaker_summary(self) -> str:
        """One-line fleet breaker state for the tick telemetry feed.

        ``"none"`` when no backend carries a breaker (matching the
        router-less scheduler's label), ``"closed"`` when all circuits
        are closed, otherwise the non-closed backends spelled out.  A
        solo fleet reports its breaker's bare state, exactly like the
        router-less scheduler.
        """
        if all(backend.breaker is None for backend in self.backends):
            return "none"
        if self.solo:
            return self.backends[0].breaker.state.value
        degraded = [
            f"{backend.name}:{backend.breaker.state.value}"
            for backend in self.backends
            if backend.breaker is not None
            and backend.breaker.state.value != "closed"
        ]
        return "closed" if not degraded else ",".join(degraded)

    # ------------------------------------------------------------------
    # Round execution
    # ------------------------------------------------------------------
    def post_round(
        self,
        units: Sequence[Tuple[int, Sequence[Question]]],
        *,
        now: float,
        tick: int,
        budgets: Optional[Dict[int, float]] = None,
        rwl_budget: Optional[float] = None,
    ) -> RoundOutcome:
        """Split, post and merge one shared round.

        Args:
            units: ``(query_id, questions)`` blocks, scheduler policy
                order; the router keeps each block whole when it can.
            now: the simulated clock at round start (gates sustained
                outage windows and anchors backend spans).
            tick: the scheduler tick (span ids, decision log).
            budgets: optional remaining per-query latency budgets keyed
                by query id — a unit whose policy-preferred backend is
                predicted to finish past its budget is placed on the
                predicted-fastest backend instead.
            rwl_budget: optional remaining latency budget (the tightest
                across the round's queries) clipping each backend's RWL
                retry backoff.
        """
        decisions = self._decisions
        self._decisions = None
        if decisions is None:
            decisions = {
                b.index: (
                    b.breaker.before_round(now)
                    if b.breaker is not None
                    else RoundDecision.POST
                )
                for b in self.backends
            }
        assignment, unposted, remaining = self._assign(
            units, decisions, budgets=budgets
        )
        mirrors = self._plan_hedges(assignment, remaining, decisions)
        decision = RouteDecision(
            tick=tick,
            assignments={
                b.name: len(assignment[b.index]) for b in self.backends
            },
            states={b.name: b.breaker_state() for b in self.backends},
            unposted=len(unposted),
            hedges={
                self.backends[primary].name: mirror.name
                for primary, mirror in mirrors.items()
            },
        )
        registry = get_registry()
        registry.counter("router.rounds").inc()
        if unposted:
            registry.counter("router.deferred_questions").inc(len(unposted))

        answers: List[Answer] = []
        latency = 0.0
        n_posted = 0
        backend_latencies: Dict[str, float] = {}
        outaged: List[str] = []
        hedged_questions: set = set()
        posted_any = False
        tracer = current_tracer()
        scope = current_span() if tracer.enabled else None
        for backend in self.backends:
            sub_batch = assignment[backend.index]
            if not sub_batch:
                continue
            posted_any = True
            probe = decisions[backend.index] is RoundDecision.PROBE
            primary = self._execute_sub_batch(
                backend,
                sub_batch,
                registry,
                tracer,
                scope,
                now,
                probe=probe,
                budget=rwl_budget,
            )
            mirror = mirrors.get(backend.index)
            if mirror is None:
                self._merge_latency(
                    backend_latencies, backend.name, primary.latency
                )
                if primary.ok:
                    answers.extend(primary.answers)
                    latency = max(latency, primary.latency)
                    n_posted += len(sub_batch)
                else:
                    latency = max(latency, primary.latency)
                    outaged.append(backend.name)
                continue
            # Hedged pair: mirror the sub-batch, first answer wins.
            hedged_questions.update(sub_batch)
            self.hedges += 1
            registry.counter("hedge.posts").inc()
            mirror_result = self._execute_sub_batch(
                mirror,
                sub_batch,
                registry,
                tracer,
                scope,
                now,
                probe=False,
                budget=rwl_budget,
                hedge_of=backend.name,
            )
            pair = ((backend, primary), (mirror, mirror_result))
            winners = [(b, r) for b, r in pair if r.ok]
            if winners:
                win_backend, win_result = min(
                    winners,
                    key=lambda br: (br[1].latency, br[0] is not backend),
                )
                answers.extend(win_result.answers)
                latency = max(latency, win_result.latency)
                n_posted += len(sub_batch)
                if win_backend is mirror:
                    self.hedge_wins += 1
                    registry.counter("hedge.wins").inc()
                for b, r in pair:
                    self._merge_latency(backend_latencies, b.name, r.latency)
                    if b is win_backend:
                        continue
                    if r.ok:
                        self.hedge_waste += r.posted_copies
                        registry.counter("hedge.waste").inc(r.posted_copies)
                    else:
                        outaged.append(b.name)
            else:
                # Both members swallowed: the pair behaves like a plain
                # outage of both backends.
                for b, r in pair:
                    self._merge_latency(backend_latencies, b.name, r.latency)
                    latency = max(latency, r.latency)
                    outaged.append(b.name)
            if tracer.enabled:
                winner_label = "none"
                if winners:
                    winner_label = (
                        "primary" if win_backend is backend else "mirror"
                    )
                tracer.emit(
                    RoundHedged(
                        tick=tick,
                        backend=backend.name,
                        mirror=mirror.name,
                        questions=len(sub_batch),
                        winner=winner_label,
                    )
                )
        successful = set(backend_latencies) - set(outaged)
        total_outage = posted_any and not successful
        return RoundOutcome(
            answers=tuple(answers),
            latency=latency,
            n_posted=n_posted,
            unposted=frozenset(unposted),
            total_outage=total_outage,
            decision=decision,
            backend_latencies=backend_latencies,
            outaged=tuple(outaged),
            hedged_questions=frozenset(hedged_questions),
        )

    def _execute_sub_batch(
        self,
        backend: Backend,
        sub_batch: List[Question],
        registry,
        tracer,
        scope,
        now: float,
        *,
        probe: bool,
        budget: Optional[float],
        hedge_of: Optional[str] = None,
    ) -> _SubRound:
        """Run one backend's sub-batch end to end (post, account, trace).

        Mirrors the pre-hedging inline loop body exactly for primaries;
        a hedge mirror (``hedge_of`` set) gets its own deterministic
        span id (``<tick>/<mirror>~<primary>``) and detail suffix.
        """
        backend.set_clock(now)
        backend.rounds += 1
        span_id = None
        if scope is not None:
            suffix = f"~{hedge_of}" if hedge_of is not None else ""
            span_id = f"{scope.span_id}/{backend.name}{suffix}"
        detail_suffix = (
            f" (hedge for {hedge_of})" if hedge_of is not None else ""
        )
        try:
            result = self._post_backend(
                backend, sub_batch, span_id, scope, budget=budget
            )
        except PlatformOutageError as outage:
            backend.outages += 1
            wasted = float(outage.wasted_seconds)
            self._observe_backend(registry, backend, wasted, 0, outage=True)
            if not self.solo and span_id is not None:
                emit_span(
                    tracer,
                    span_id,
                    "backend",
                    start=scope.base_time,
                    end=scope.base_time + wasted,
                    parent_id=scope.span_id,
                    detail=(
                        f"{backend.name}: {len(sub_batch)} questions"
                        + detail_suffix
                    ),
                    status="outage",
                )
            logger.warning(
                "backend %s outage swallowed %d question(s) at t=%.1f",
                backend.name,
                len(sub_batch),
                now,
            )
            return _SubRound(ok=False, latency=wasted)
        backend.questions_posted += len(sub_batch)
        backend.cost += backend.spec.price_per_question * float(
            result.questions_posted
        )
        if self.hedge is not None:
            self._latency_window.append(float(result.latency))
        self._observe_backend(
            registry, backend, float(result.latency), len(sub_batch),
            outage=False,
        )
        if not self.solo and span_id is not None:
            emit_span(
                tracer,
                span_id,
                "backend",
                start=scope.base_time,
                end=scope.base_time + float(result.latency),
                parent_id=scope.span_id,
                detail=(
                    f"{backend.name}: {len(sub_batch)} questions"
                    + (" (probe)" if probe else "")
                    + detail_suffix
                ),
            )
        return _SubRound(
            ok=True,
            latency=float(result.latency),
            answers=tuple(result.answers),
            posted_copies=int(result.questions_posted),
        )

    @staticmethod
    def _merge_latency(
        backend_latencies: Dict[str, float], name: str, value: float
    ) -> None:
        """Record a backend's sub-round latency (max-merge on hedge reuse)."""
        backend_latencies[name] = max(
            backend_latencies.get(name, 0.0), float(value)
        )

    def _post_backend(
        self,
        backend: Backend,
        sub_batch: List[Question],
        span_id: Optional[str],
        scope,
        *,
        budget: Optional[float] = None,
    ) -> RWLResult:
        """Post one backend's sub-batch through its own RWL.

        In a multi-backend fleet the backend span becomes the ambient
        scope, so RWL attempt spans nest under it; a solo fleet leaves
        the scheduler's tick scope ambient — the trace stays identical
        to the router-less run.
        """
        if self.solo or span_id is None:
            return backend.rwl.ask(sub_batch, budget=budget)
        with span_scope(span_id, base_time=scope.base_time):
            return backend.rwl.ask(sub_batch, budget=budget)

    @staticmethod
    def _observe_backend(
        registry,
        backend: Backend,
        latency: float,
        n_questions: int,
        *,
        outage: bool,
    ) -> None:
        """Record the per-backend labeled series for one sub-round."""
        labels = {"backend": backend.name}
        registry.histogram(
            labeled_name("backend.round_latency", labels)
        ).observe(latency)
        registry.counter(labeled_name("backend.rounds", labels)).inc()
        if n_questions:
            registry.counter(
                labeled_name("backend.questions_posted", labels)
            ).inc(n_questions)
        if outage:
            registry.counter(labeled_name("backend.outages", labels)).inc()

    # ------------------------------------------------------------------
    # Hedging
    # ------------------------------------------------------------------
    def hedge_after_threshold(self) -> Optional[float]:
        """The armed hedge threshold in seconds, or ``None`` when unarmed.

        Explicit ``hedge_after`` values arm immediately; derived
        thresholds need ``min_samples`` observed sub-round latencies.
        An infinite threshold never arms (the bit-identity escape hatch).
        """
        config = self.hedge
        if config is None:
            return None
        if config.hedge_after is not None:
            if math.isinf(config.hedge_after):
                return None
            return float(config.hedge_after)
        if len(self._latency_window) < config.min_samples:
            return None
        return (
            float(percentile(list(self._latency_window), config.percentile))
            * config.factor
        )

    def _plan_hedges(
        self,
        assignment: Dict[int, List[Question]],
        remaining: Dict[int, int],
        decisions: Dict[int, RoundDecision],
    ) -> Dict[int, Backend]:
        """Pick mirrors for predicted-slow sub-batches; consumes slack.

        A sub-batch hedges when its backend's predicted latency exceeds
        the armed threshold *and* some other posting backend with room
        is predicted strictly faster — mirroring to an equally slow
        backend would only amplify load.  Deterministic: backends are
        scanned in spec order and mirror ties break toward the lower
        index.
        """
        if (
            self.hedge is None
            or self.solo
            or self.hedging_suspended
        ):
            return {}
        threshold = self.hedge_after_threshold()
        if threshold is None:
            return {}
        mirrors: Dict[int, Backend] = {}
        for backend in self.backends:
            sub_batch = assignment[backend.index]
            if not sub_batch:
                continue
            if decisions[backend.index] is not RoundDecision.POST:
                continue
            predicted = self._predicted(backend, len(sub_batch))
            if predicted <= threshold:
                continue
            candidates = [
                b
                for b in self.backends
                if b.index != backend.index
                and decisions[b.index] is RoundDecision.POST
                and remaining[b.index] >= len(sub_batch)
            ]
            if not candidates:
                continue
            mirror = min(
                candidates,
                key=lambda b: (
                    self._predicted(
                        b, len(assignment[b.index]) + len(sub_batch)
                    ),
                    b.index,
                ),
            )
            if (
                self._predicted(
                    mirror, len(assignment[mirror.index]) + len(sub_batch)
                )
                >= predicted
            ):
                continue
            mirrors[backend.index] = mirror
            remaining[mirror.index] -= len(sub_batch)
            logger.debug(
                "hedging %s's %d question(s) to %s (predicted %.1f s > "
                "threshold %.1f s)",
                backend.name,
                len(sub_batch),
                mirror.name,
                predicted,
                threshold,
            )
        return mirrors

    # ------------------------------------------------------------------
    # Snapshot / restore (consumed by repro.service.journal)
    # ------------------------------------------------------------------
    def state_dict(self) -> Dict[str, Any]:
        """Serialize the router's mutable hedging state for a snapshot."""
        return {
            "latency_window": [float(x) for x in self._latency_window],
            "hedges": self.hedges,
            "hedge_wins": self.hedge_wins,
            "hedge_waste": self.hedge_waste,
            "suspended": self.hedging_suspended,
        }

    def load_state_dict(self, payload: Dict[str, Any]) -> None:
        """Restore the counterpart of :meth:`state_dict`."""
        self._latency_window.clear()
        self._latency_window.extend(
            float(x) for x in payload["latency_window"]
        )
        self.hedges = int(payload["hedges"])
        self.hedge_wins = int(payload["hedge_wins"])
        self.hedge_waste = int(payload["hedge_waste"])
        self.hedging_suspended = bool(payload["suspended"])

    # ------------------------------------------------------------------
    # Assignment
    # ------------------------------------------------------------------
    def _round_capacity(
        self, backend: Backend, decision: RoundDecision
    ) -> int:
        """Distinct questions *backend* may take this round."""
        if decision is RoundDecision.DEFER:
            return 0
        capacity = (
            backend.spec.capacity
            if backend.spec.capacity is not None
            else _UNBOUNDED
        )
        if decision is RoundDecision.PROBE and not self.solo:
            # Solo fleets probe the router-less way: the scheduler packs
            # a single query; the quota applies only to real fleets.
            return min(capacity, PROBE_QUESTIONS)
        return capacity

    def _predicted(self, backend: Backend, load: int) -> float:
        """Predicted round latency of *backend* carrying *load* questions."""
        return float(backend.spec.latency(load))

    def _placement_key(
        self, backend: Backend, load: int, unit_size: int
    ) -> Tuple:
        """Ordering key for placing a unit; smaller is better.

        Backend index is always the final component — every tie is
        broken deterministically toward spec order.
        """
        after = load + unit_size
        if self.policy == "latency":
            return (self._predicted(backend, after), backend.index)
        if self.policy == "least-loaded":
            capacity = backend.spec.capacity
            occupancy = after / capacity if capacity is not None else float(after)
            return (occupancy, self._predicted(backend, after), backend.index)
        # weighted-price: cheapest first, predicted latency as tie-break.
        return (
            backend.spec.price_per_question,
            self._predicted(backend, after),
            backend.index,
        )

    def _assign(
        self,
        units: Sequence[Tuple[int, Sequence[Question]]],
        decisions: Dict[int, RoundDecision],
        budgets: Optional[Dict[int, float]] = None,
    ) -> Tuple[Dict[int, List[Question]], List[Question], Dict[int, int]]:
        """Place every unit; returns (per-backend batches, unposted,
        remaining per-backend capacity).

        Phase 1 keeps units whole on the policy-preferred backend with
        room; phase 2 splits units that fit nowhere whole across the
        remaining slack (largest remaining slot first).  Questions that
        still do not fit stay outstanding for the next tick.

        With *budgets*, a unit whose policy pick is predicted to finish
        past the query's remaining latency budget is placed on the
        predicted-fastest candidate instead — near-deadline queries
        trade price/load preferences for speed.
        """
        assignment: Dict[int, List[Question]] = {
            b.index: [] for b in self.backends
        }
        remaining: Dict[int, int] = {
            b.index: self._round_capacity(b, decisions[b.index])
            for b in self.backends
        }
        unposted: List[Question] = []
        for query_id, questions in units:
            block = list(questions)
            candidates = [
                b
                for b in self.backends
                if remaining[b.index] >= len(block) and block
            ]
            if candidates:
                best = min(
                    candidates,
                    key=lambda b: self._placement_key(
                        b, len(assignment[b.index]), len(block)
                    ),
                )
                if budgets is not None:
                    budget = budgets.get(query_id)
                    if budget is not None and (
                        self._predicted(
                            best, len(assignment[best.index]) + len(block)
                        )
                        > budget
                    ):
                        best = min(
                            candidates,
                            key=lambda b: (
                                self._predicted(
                                    b,
                                    len(assignment[b.index]) + len(block),
                                ),
                                b.index,
                            ),
                        )
                        get_registry().counter(
                            "router.budget_overrides"
                        ).inc()
                assignment[best.index].extend(block)
                remaining[best.index] -= len(block)
                continue
            # Phase 2: no single backend fits the whole block — carve it
            # over the remaining slack, biggest slot first (fewest seams).
            get_registry().counter("router.split_units").inc()
            spill = sorted(
                self.backends,
                key=lambda b: (-remaining[b.index], b.index),
            )
            cursor = 0
            for backend in spill:
                slack = remaining[backend.index]
                if slack <= 0 or cursor >= len(block):
                    continue
                chunk = block[cursor : cursor + slack]
                assignment[backend.index].extend(chunk)
                remaining[backend.index] -= len(chunk)
                cursor += len(chunk)
            unposted.extend(block[cursor:])
        return assignment, unposted, remaining

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def hedge_summary(self) -> Dict[str, int]:
        """Cumulative hedging totals (the CLI's hedge line)."""
        return {
            "hedges": self.hedges,
            "wins": self.hedge_wins,
            "waste": self.hedge_waste,
        }

    def summary(self) -> List[Dict[str, object]]:
        """Per-backend cumulative totals (the CLI's fleet table)."""
        return [
            {
                "name": b.name,
                "rounds": b.rounds,
                "questions_posted": b.questions_posted,
                "outages": b.outages,
                "cost": round(b.cost, 6),
                "breaker": b.breaker_state(),
            }
            for b in self.backends
        ]
