"""Named backend fleets for the CLI, chaos harness and benchmarks.

``serve --backends <name>`` accepts either a JSON spec file or one of the
presets below — small, heterogeneous fleets built around the paper's
fitted MTurk model (``mturk_car_latency``: L(q) = 239 + 0.06 q) so the
routing tradeoffs are visible at workload scale:

* ``solo`` — one MTurk-shaped backend, unbounded, no faults: the fleet
  that must be bit-identical to running without a router at all.
* ``duo`` — a fast boutique platform with a small worker pool next to a
  slow bulk platform with a large one.
* ``trio`` — fast/balanced/cheap, each with its own capacity and price;
  the default fleet of ``benchmarks/bench_routing.py``.
* ``outage-trio`` — ``trio`` with circuit breakers armed and a sustained
  mid-run outage window on one backend: the failover demo (and the
  ``multibackend-outage`` chaos scenario's fleet).
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.core.latency import LinearLatency, PowerLawLatency, mturk_car_latency
from repro.crowd.breaker import CircuitBreakerConfig
from repro.crowd.faults import FaultProfile
from repro.crowd.multibackend.spec import BackendSpec
from repro.errors import InvalidParameterError


def _solo() -> Tuple[BackendSpec, ...]:
    return (
        BackendSpec(name="mturk", latency=mturk_car_latency()),
    )


def _duo() -> Tuple[BackendSpec, ...]:
    return (
        BackendSpec(
            name="boutique",
            latency=LinearLatency(delta=120.0, alpha=0.25),
            capacity=120,
            price_per_question=0.04,
        ),
        BackendSpec(
            name="bulk",
            latency=LinearLatency(delta=400.0, alpha=0.02),
            capacity=2000,
            price_per_question=0.01,
        ),
    )


def _trio() -> Tuple[BackendSpec, ...]:
    return (
        BackendSpec(
            name="fast",
            latency=LinearLatency(delta=150.0, alpha=0.20),
            capacity=200,
            price_per_question=0.05,
        ),
        BackendSpec(
            name="balanced",
            latency=mturk_car_latency(),
            capacity=800,
            price_per_question=0.02,
        ),
        BackendSpec(
            name="cheap",
            latency=PowerLawLatency(delta=320.0, alpha=0.5, p=0.8),
            capacity=1500,
            price_per_question=0.005,
        ),
    )


def _outage_trio() -> Tuple[BackendSpec, ...]:
    breaker = CircuitBreakerConfig(
        failure_threshold=2, cooldown_seconds=3000.0, probe_successes=1
    )
    fast, balanced, cheap = _trio()
    # The balanced (default-route) backend goes dark mid-run: its breaker
    # trips and the router reroutes its share to the survivors.
    import dataclasses

    return (
        dataclasses.replace(fast, breaker=breaker),
        dataclasses.replace(
            balanced,
            breaker=breaker,
            fault_profile=FaultProfile(
                outage_window=(2000.0, 14000.0),
                outage_detection_time=300.0,
            ),
        ),
        dataclasses.replace(cheap, breaker=breaker),
    )


_PRESETS: Dict[str, object] = {
    "solo": _solo,
    "duo": _duo,
    "trio": _trio,
    "outage-trio": _outage_trio,
}


def available_backend_presets() -> List[str]:
    """Names accepted by :func:`backend_preset_by_name` (``--backends``)."""
    return sorted(_PRESETS)


def backend_preset_by_name(name: str) -> List[BackendSpec]:
    """Instantiate a named fleet preset.

    Raises:
        InvalidParameterError: for unknown names (the message lists the
            available ones).
    """
    try:
        factory = _PRESETS[name]
    except KeyError:
        raise InvalidParameterError(
            f"unknown backend preset {name!r}; available: "
            f"{', '.join(available_backend_presets())}"
        ) from None
    return list(factory())


def resolve_backends(spec: str) -> List[BackendSpec]:
    """Resolve a ``--backends`` argument: preset name or JSON file path.

    Anything containing a path separator or ending in ``.json`` is
    treated as a file; everything else is a preset name.
    """
    from repro.crowd.multibackend.spec import load_backend_specs

    if spec.endswith(".json") or "/" in spec or "\\" in spec:
        return load_backend_specs(spec)
    return backend_preset_by_name(spec)
