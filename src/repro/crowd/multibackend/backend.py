"""Runtime counterpart of a :class:`~repro.crowd.multibackend.spec.BackendSpec`.

One :class:`Backend` bundles everything a federated platform needs to run
deterministically: its simulated platform (sharing the fleet-wide ground
truth, error model and worker-pool dynamics), an optional fault-injection
wrapper, an optional circuit breaker, and its *own*
:class:`~repro.crowd.rwl.ReliableWorkerLayer` — so repetition, majority
voting and retry backoff all draw from per-backend RNG streams.

RNG stream contract (the single-backend zero-cost guarantee):

* a fleet of **one** backend uses the legacy scheduler streams
  ``(seed, 1)`` / ``(seed, 2)`` / ``(seed, 3)`` for platform / RWL /
  faults, so routing through a one-backend fleet is bit-identical to
  posting directly to the platform;
* a fleet of **N > 1** derives backend *i*'s streams as ``(seed, 1, i)``
  / ``(seed, 2, i)`` / ``(seed, 3, i)`` — independent per backend, so one
  backend's faults never perturb another's answers, and the journal can
  snapshot/restore each stream separately.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Dict, List, Optional, Sequence

import numpy as np

from repro.crowd.breaker import CircuitBreaker
from repro.crowd.error_models import ErrorModel
from repro.crowd.faults import FaultStats, FaultyPlatform, RetryPolicy
from repro.crowd.ground_truth import GroundTruth
from repro.crowd.multibackend.spec import BackendSpec, validate_fleet
from repro.crowd.platform import Platform, PlatformStats, SimulatedPlatform
from repro.crowd.rwl import ReliableWorkerLayer
from repro.crowd.workers import WorkerPoolConfig
from repro.errors import JournalCorruptError


class Backend:
    """One live federated backend: platform stack + breaker + RWL.

    Built by :func:`build_backends`; the router posts to
    :attr:`rwl` and consults :attr:`breaker`, the journal snapshots
    :meth:`state_dict`.
    """

    def __init__(
        self,
        spec: BackendSpec,
        index: int,
        platform: Platform,
        rwl: ReliableWorkerLayer,
        breaker: Optional[CircuitBreaker],
    ) -> None:
        self.spec = spec
        self.index = index
        self.platform = platform
        self.rwl = rwl
        self.breaker = breaker
        #: Cumulative distinct questions this backend resolved.
        self.questions_posted = 0
        #: Rounds this backend participated in.
        self.rounds = 0
        #: Whole-round outages this backend suffered.
        self.outages = 0
        #: Dollars spent on this backend (price * posted copies).
        self.cost = 0.0

    @property
    def name(self) -> str:
        return self.spec.name

    @property
    def faulty(self) -> Optional[FaultyPlatform]:
        platform = self.platform
        return platform if isinstance(platform, FaultyPlatform) else None

    @property
    def inner(self) -> SimulatedPlatform:
        faulty = self.faulty
        return faulty.inner if faulty is not None else self.platform

    def set_clock(self, now: float) -> None:
        """Gate this backend's sustained-outage window on simulated time."""
        faulty = self.faulty
        if faulty is not None:
            faulty.set_clock(now)

    def breaker_state(self) -> str:
        """The breaker state label (``"closed"`` for breaker-less backends)."""
        return self.breaker.state.value if self.breaker is not None else "closed"

    # ------------------------------------------------------------------
    # Snapshot / restore (consumed by repro.service.journal)
    # ------------------------------------------------------------------
    def state_dict(self) -> Dict[str, Any]:
        """Serialize this backend's mutable state for a journal snapshot."""
        faulty = self.faulty
        inner = self.inner
        return {
            "name": self.name,
            "rng": {
                "platform": inner._rng.bit_generator.state,
                "rwl": self.rwl._rng.bit_generator.state,
                "fault": (
                    faulty._fault_rng.bit_generator.state
                    if faulty is not None
                    else None
                ),
            },
            "platform": {
                "next_worker_id": inner._next_worker_id,
                "stats": dataclasses.asdict(inner.stats),
            },
            "fault": (
                {
                    "stats": faulty.fault_stats.as_dict(),
                    "clock": float(faulty.clock),
                }
                if faulty is not None
                else None
            ),
            "breaker": (
                self.breaker.state_dict() if self.breaker is not None else None
            ),
            "counters": {
                "questions_posted": self.questions_posted,
                "rounds": self.rounds,
                "outages": self.outages,
                "cost": float(self.cost),
            },
        }

    def load_state_dict(self, payload: Dict[str, Any]) -> None:
        """Restore the counterpart of :meth:`state_dict`."""
        from repro.service.journal import _generator_from_state

        if payload.get("name") != self.name:
            raise JournalCorruptError(
                f"snapshot backend {payload.get('name')!r} does not match "
                f"configured backend {self.name!r}"
            )
        faulty = self.faulty
        inner = self.inner
        rng_states = payload["rng"]
        inner._rng = _generator_from_state(rng_states["platform"])
        self.rwl._rng = _generator_from_state(rng_states["rwl"])
        if faulty is not None:
            if rng_states["fault"] is None:
                raise JournalCorruptError(
                    f"snapshot lacks the fault RNG state of faulty backend "
                    f"{self.name!r}"
                )
            faulty._fault_rng = _generator_from_state(rng_states["fault"])
            fault = payload["fault"]
            faulty.fault_stats = FaultStats(**fault["stats"])
            faulty.clock = float(fault["clock"])
        inner._next_worker_id = int(payload["platform"]["next_worker_id"])
        inner.stats = PlatformStats(**payload["platform"]["stats"])
        breaker_state = payload.get("breaker")
        if self.breaker is not None and breaker_state is not None:
            self.breaker.load_state_dict(breaker_state)
        counters = payload["counters"]
        self.questions_posted = int(counters["questions_posted"])
        self.rounds = int(counters["rounds"])
        self.outages = int(counters["outages"])
        self.cost = float(counters["cost"])


def build_backends(
    specs: Sequence[BackendSpec],
    truth: GroundTruth,
    seed: int,
    *,
    repetition: int = 1,
    retry_policy: Optional[RetryPolicy] = None,
    error_model: Optional[ErrorModel] = None,
    worker_config: Optional[WorkerPoolConfig] = None,
) -> List[Backend]:
    """Instantiate the live fleet for *specs* over a shared ground truth.

    All backends sample the same hidden order (they are different doors
    to the same crowd task), with per-backend RNG streams per the module
    contract above.
    """
    validate_fleet(specs)
    solo = len(specs) == 1
    backends: List[Backend] = []
    for index, spec in enumerate(specs):
        platform_key = (seed, 1) if solo else (seed, 1, index)
        rwl_key = (seed, 2) if solo else (seed, 2, index)
        fault_key = (seed, 3) if solo else (seed, 3, index)
        platform: Platform = SimulatedPlatform(
            truth,
            np.random.default_rng(platform_key),
            error_model=error_model,
            config=(
                spec.worker_config
                if spec.worker_config is not None
                else worker_config
            ),
        )
        if spec.fault_profile is not None:
            platform = FaultyPlatform(
                platform,
                spec.fault_profile,
                np.random.default_rng(fault_key),
            )
        breaker = (
            CircuitBreaker(spec.breaker) if spec.breaker is not None else None
        )
        rwl = ReliableWorkerLayer(
            platform,
            np.random.default_rng(rwl_key),
            repetition=repetition,
            retry_policy=retry_policy,
            breaker=breaker,
        )
        backends.append(Backend(spec, index, platform, rwl, breaker))
    return backends
