"""Multi-backend crowd federation: capacity-aware routing with failover.

The paper's single-platform model generalized to a fleet: declare each
platform as a :class:`BackendSpec` (its own L(q), capacity, price, fault
profile and circuit breaker), build the live fleet with
:func:`build_backends`, and let the :class:`CapacityAwareRouter` split
every scheduler round across the backends — minimizing predicted round
latency under per-backend load limits, with breaker-driven failover.

See ``docs/backends.md`` for the spec-file format, routing policies,
failover semantics and the determinism contract.
"""

from repro.crowd.multibackend.backend import Backend, build_backends
from repro.crowd.multibackend.presets import (
    available_backend_presets,
    backend_preset_by_name,
    resolve_backends,
)
from repro.crowd.multibackend.router import (
    PROBE_QUESTIONS,
    ROUTING_POLICIES,
    CapacityAwareRouter,
    HedgeConfig,
    RouteDecision,
    RoundOutcome,
    RouterAdmission,
)
from repro.crowd.multibackend.spec import (
    BackendSpec,
    backend_spec_from_dict,
    backend_spec_to_dict,
    load_backend_specs,
    validate_fleet,
)

__all__ = [
    "Backend",
    "BackendSpec",
    "CapacityAwareRouter",
    "HedgeConfig",
    "PROBE_QUESTIONS",
    "ROUTING_POLICIES",
    "RouteDecision",
    "RoundOutcome",
    "RouterAdmission",
    "available_backend_presets",
    "backend_preset_by_name",
    "backend_spec_from_dict",
    "backend_spec_to_dict",
    "build_backends",
    "load_backend_specs",
    "resolve_backends",
    "validate_fleet",
]
