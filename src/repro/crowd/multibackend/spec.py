"""Declarative description of one federated crowd backend.

The paper's ``L(q)`` is the latency model of *one* platform; a deployment
spreading rounds over several crowd platforms needs one such model — plus
a capacity, a price and a failure story — *per platform*.
:class:`BackendSpec` is that bundle: a frozen, JSON-serializable value
object the :class:`~repro.crowd.multibackend.router.CapacityAwareRouter`
plans against and the scheduler journal records verbatim, so a recovered
multi-backend run is reconstructed from exactly the fleet it crashed with.

Specs are data, not behaviour: the runtime counterpart (platform + RWL +
breaker + seeded RNG streams) is built by
:func:`repro.crowd.multibackend.backend.build_backends`.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Union

from repro.core.latency import LatencyFunction
from repro.crowd.breaker import CircuitBreakerConfig
from repro.crowd.faults import FaultProfile, fault_profile_by_name
from repro.crowd.workers import WorkerPoolConfig
from repro.errors import InvalidParameterError


@dataclass(frozen=True)
class BackendSpec:
    """One crowd platform in a federated fleet.

    Attributes:
        name: unique fleet-wide identifier; appears in span ids, journal
            records and the ``backend`` label of exported metrics.
        latency: the backend's own ``L(q)`` — the *predicted* completion
            time of a round of ``q`` questions, which the router
            minimizes when splitting a round across the fleet.  (The
            executed latency is whatever the backend's simulated worker
            pool measures, exactly as the scheduler-level ``latency`` is
            the planner's model, not the simulator's.)
        capacity: maximum distinct questions this backend accepts per
            shared round (its worker pool's throughput); ``None`` means
            unbounded.
        price_per_question: dollars per posted question, consumed by the
            ``weighted-price`` routing policy and the ``backend.cost``
            metric.
        fault_profile: optional fault injection local to this backend
            (its own dedicated fault RNG stream).
        breaker: optional circuit breaker guarding this backend; when its
            circuit opens the router reroutes the backend's share to the
            survivors instead of deferring the whole round.
        worker_config: optional worker-pool dynamics override for this
            backend (``None`` inherits the fleet-shared pool), so
            backends can genuinely execute at different speeds.
    """

    name: str
    latency: LatencyFunction
    capacity: Optional[int] = None
    price_per_question: float = 0.0
    fault_profile: Optional[FaultProfile] = None
    breaker: Optional[CircuitBreakerConfig] = None
    worker_config: Optional[WorkerPoolConfig] = None

    def __post_init__(self) -> None:
        if not self.name or "\n" in self.name:
            raise InvalidParameterError(
                f"backend name must be a non-empty single line, got "
                f"{self.name!r}"
            )
        if self.capacity is not None and self.capacity < 1:
            raise InvalidParameterError(
                f"backend {self.name!r} capacity must be >= 1 (or None), "
                f"got {self.capacity}"
            )
        if self.price_per_question < 0:
            raise InvalidParameterError(
                f"backend {self.name!r} price_per_question must be >= 0, "
                f"got {self.price_per_question}"
            )


def validate_fleet(specs: Sequence[BackendSpec]) -> None:
    """Reject empty fleets and duplicate backend names."""
    if not specs:
        raise InvalidParameterError("a backend fleet must contain >= 1 backend")
    names = [spec.name for spec in specs]
    if len(set(names)) != len(names):
        duplicates = sorted({n for n in names if names.count(n) > 1})
        raise InvalidParameterError(
            f"backend names must be unique within a fleet; duplicated: "
            f"{', '.join(duplicates)}"
        )


# ----------------------------------------------------------------------
# Serialization (journal header / --backends spec files)
# ----------------------------------------------------------------------
def backend_spec_to_dict(spec: BackendSpec) -> Dict[str, Any]:
    """Serialize one :class:`BackendSpec` to a JSON-ready dict."""
    import dataclasses

    from repro.persistence import latency_to_dict, worker_config_to_dict

    return {
        "name": spec.name,
        "latency": latency_to_dict(spec.latency),
        "capacity": spec.capacity,
        "price_per_question": float(spec.price_per_question),
        "fault_profile": (
            dataclasses.asdict(spec.fault_profile)
            if spec.fault_profile is not None
            else None
        ),
        "breaker": (
            dataclasses.asdict(spec.breaker)
            if spec.breaker is not None
            else None
        ),
        "worker_config": worker_config_to_dict(spec.worker_config),
    }


def backend_spec_from_dict(payload: Dict[str, Any]) -> BackendSpec:
    """Rebuild a :class:`BackendSpec` (validation re-runs on construction).

    The ``fault_profile`` field also accepts a named profile string
    (``"mild"``, ``"sustained"``, ...) for hand-written spec files; the
    journal always writes the expanded dict form.
    """
    from repro.persistence import latency_from_dict, worker_config_from_dict

    try:
        name = payload["name"]
        latency = latency_from_dict(payload["latency"])
    except (KeyError, TypeError) as error:
        raise InvalidParameterError(
            f"malformed backend spec payload: {error}"
        ) from None
    fault_payload = payload.get("fault_profile")
    if fault_payload is None:
        fault_profile = None
    elif isinstance(fault_payload, str):
        fault_profile = fault_profile_by_name(fault_payload)
    else:
        window = fault_payload.get("outage_window")
        if window is not None:
            fault_payload = dict(fault_payload, outage_window=tuple(window))
        fault_profile = FaultProfile(**fault_payload)
    breaker_payload = payload.get("breaker")
    breaker = (
        CircuitBreakerConfig(**breaker_payload)
        if breaker_payload is not None
        else None
    )
    capacity = payload.get("capacity")
    return BackendSpec(
        name=str(name),
        latency=latency,
        capacity=int(capacity) if capacity is not None else None,
        price_per_question=float(payload.get("price_per_question", 0.0)),
        fault_profile=fault_profile,
        breaker=breaker,
        worker_config=worker_config_from_dict(payload.get("worker_config")),
    )


def load_backend_specs(path: Union[str, Path]) -> List[BackendSpec]:
    """Load a fleet from a JSON file (the ``serve --backends`` format).

    The file is either a JSON list of backend-spec objects or an object
    with a ``"backends"`` list.  See ``docs/backends.md`` for the format.
    """
    path = Path(path)
    try:
        payload = json.loads(path.read_text(encoding="utf-8"))
    except FileNotFoundError:
        raise InvalidParameterError(
            f"no such backend spec file: {path}"
        ) from None
    except json.JSONDecodeError as error:
        raise InvalidParameterError(
            f"backend spec file {path} is not valid JSON: {error}"
        ) from None
    if isinstance(payload, dict):
        payload = payload.get("backends")
    if not isinstance(payload, list):
        raise InvalidParameterError(
            f"backend spec file {path} must hold a list of backend specs "
            f'(or an object with a "backends" list)'
        )
    specs = [backend_spec_from_dict(entry) for entry in payload]
    validate_fleet(specs)
    return specs
