"""Time-of-day worker availability (a platform extension).

Section 2.1 notes that a latency function "can be estimated by the
crowdsourcing platform based on statistics about the workers in the
platform, their availability in different times during the day, and the
type of the task".  This module adds the availability dimension: a
:class:`DayNightCycle` scales worker discovery/arrival speed by the time of
day, and :class:`DiurnalPlatform` tracks a wall clock across successive
rounds so a MAX operation started in the evening slows down overnight.

Approximation: the activity level is sampled at the moment a batch is
posted (not continuously integrated over its lifetime); batches are much
shorter than the day cycle in all our workloads.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.crowd.error_models import ErrorModel
from repro.crowd.ground_truth import GroundTruth
from repro.crowd.platform import BatchResult, SimulatedPlatform
from repro.crowd.workers import WorkerPoolConfig
from repro.errors import InvalidParameterError
from repro.types import Question

SECONDS_PER_DAY = 24 * 3600.0


class DayNightCycle:
    """Worker activity as a function of the time of day.

    Activity is 1.0 inside the day window and ``night_activity`` outside,
    with the window expressed in hours since midnight.
    """

    def __init__(
        self,
        day_start_hour: float = 8.0,
        day_end_hour: float = 23.0,
        night_activity: float = 0.25,
    ) -> None:
        if not 0.0 <= day_start_hour < day_end_hour <= 24.0:
            raise InvalidParameterError(
                f"need 0 <= day_start < day_end <= 24, got "
                f"({day_start_hour}, {day_end_hour})"
            )
        if not 0.0 < night_activity <= 1.0:
            raise InvalidParameterError(
                f"night_activity must be in (0, 1], got {night_activity}"
            )
        self.day_start = day_start_hour * 3600.0
        self.day_end = day_end_hour * 3600.0
        self.night_activity = night_activity

    def activity(self, wall_time: float) -> float:
        """Activity multiplier at *wall_time* seconds since midnight day 0."""
        time_of_day = wall_time % SECONDS_PER_DAY
        if self.day_start <= time_of_day < self.day_end:
            return 1.0
        return self.night_activity


class DiurnalPlatform(SimulatedPlatform):
    """A platform whose worker supply follows a day/night cycle.

    The platform keeps a wall clock: every posted batch advances it by the
    batch's completion time (rounds of a MAX operation are sequential).
    Worker discovery and arrival delays stretch by ``1 / activity`` when
    the batch is posted at a low-activity time.
    """

    def __init__(
        self,
        truth: GroundTruth,
        rng: np.random.Generator,
        error_model: Optional[ErrorModel] = None,
        config: Optional[WorkerPoolConfig] = None,
        cycle: Optional[DayNightCycle] = None,
        start_hour: float = 9.0,
    ) -> None:
        super().__init__(truth, rng, error_model=error_model, config=config)
        if not 0.0 <= start_hour < 24.0:
            raise InvalidParameterError(
                f"start_hour must be in [0, 24), got {start_hour}"
            )
        self.cycle = cycle if cycle is not None else DayNightCycle()
        self.wall_clock = start_hour * 3600.0

    def post_batch(self, questions: Sequence[Question]) -> BatchResult:
        """Post a batch at the current wall-clock time.

        The returned completion time already includes the slowdown; the
        wall clock advances so the *next* round sees the later time of day.
        """
        activity = self.cycle.activity(self.wall_clock)
        base_config = self.config
        slowed = WorkerPoolConfig(
            mean_service_time=base_config.mean_service_time,
            service_sigma=base_config.service_sigma,
            base_workers=base_config.base_workers,
            questions_per_extra_worker=base_config.questions_per_extra_worker,
            max_workers=max(
                base_config.base_workers,
                int(round(base_config.max_workers * activity)),
            ),
            discovery_mean=base_config.discovery_mean / activity,
            discovery_sigma=base_config.discovery_sigma,
            arrival_spread=base_config.arrival_spread / activity,
            attention_span=base_config.attention_span,
        )
        self.config = slowed
        try:
            result = super().post_batch(questions)
        finally:
            self.config = base_config
        self.wall_clock += result.completion_time
        return result

    @property
    def hour_of_day(self) -> float:
        """Current wall-clock time as hours since midnight."""
        return (self.wall_clock % SECONDS_PER_DAY) / 3600.0
