"""Question-selection algorithms (Section 5.2) and the scoring function."""

from repro.selection.base import QuestionSelector, SelectionContext, all_pairs
from repro.selection.complete import Complete
from repro.selection.ct import CTSelector, ct25, ct50, ct75
from repro.selection.greedy import Greedy, SpreadGreedy
from repro.selection.registry import available_selectors, selector_by_name
from repro.selection.scoring import score_candidates
from repro.selection.spread import Spread
from repro.selection.tournament import TournamentFormation

__all__ = [
    "QuestionSelector",
    "SelectionContext",
    "all_pairs",
    "TournamentFormation",
    "Spread",
    "Complete",
    "CTSelector",
    "ct25",
    "ct50",
    "ct75",
    "Greedy",
    "SpreadGreedy",
    "score_candidates",
    "selector_by_name",
    "available_selectors",
]
