"""CT selectors: SPREAD early, COMPLETE late (Section 5.2).

``CT25`` applies SPREAD in the first 25% of all rounds and COMPLETE in the
remaining 75% — the paper's example: with a 4-round allocation, SPREAD picks
round 1 and COMPLETE picks rounds 2-4.  ``CT50`` and ``CT75`` shift the
split point.  The idea is exploration-exploitation: early balanced random
questions build a non-uniform history that the later COMPLETE rounds
exploit by concentrating questions on the strongest candidates.

When the fraction of rounds is fractional we take the floor but always give
SPREAD at least one round (a CT selector that never explores would have no
scores to exploit).
"""

from __future__ import annotations

import math
from typing import List

from repro.errors import InvalidParameterError
from repro.selection.base import QuestionSelector, SelectionContext
from repro.selection.complete import Complete
from repro.selection.spread import Spread
from repro.types import Question


class CTSelector(QuestionSelector):
    """SPREAD for the first ``fraction`` of rounds, COMPLETE afterwards."""

    def __init__(self, spread_fraction: float = 0.25) -> None:
        if not 0.0 < spread_fraction < 1.0:
            raise InvalidParameterError(
                f"spread_fraction must be in (0, 1), got {spread_fraction}"
            )
        self.spread_fraction = spread_fraction
        self.name = f"CT{int(round(spread_fraction * 100))}"
        self._spread = Spread()
        self._complete = Complete()

    def spread_rounds(self, total_rounds: int) -> int:
        """How many leading rounds SPREAD gets for a *total_rounds* plan."""
        return max(1, math.floor(self.spread_fraction * total_rounds))

    def select(self, ctx: SelectionContext) -> List[Question]:
        if ctx.round_index < self.spread_rounds(ctx.total_rounds):
            return self._spread.select(ctx)
        return self._complete.select(ctx)


def ct25() -> CTSelector:
    """The CT25 selector evaluated in the paper's experiments."""
    return CTSelector(0.25)


def ct50() -> CTSelector:
    """CT50: SPREAD in the first half of the rounds."""
    return CTSelector(0.50)


def ct75() -> CTSelector:
    """CT75: SPREAD in the first three quarters of the rounds."""
    return CTSelector(0.75)
