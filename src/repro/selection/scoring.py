"""The Appendix B.2 scoring function (Algorithm 2 of the paper).

Ranking candidates by their probability of being the MAX is #P-hard
(Appendix B.1, reproduced in :mod:`repro.analysis.permutations`), so the
paper uses a PageRank-like surrogate instead: a random walker starts at a
uniformly random element and repeatedly follows a uniformly random outgoing
edge (loser -> winner); the score of an element is the probability that the
walker gets trapped there.  Only elements that never lost (the remaining
candidates) can trap the walker, and their scores sum to one.

The walk probabilities are computed by transferring "energy" from losers to
the elements that beat them, processing elements in ascending order of
(implicit or explicit) win counts — which is a topological order of the
answer DAG, so each element transfers its energy exactly once, after having
received everything it ever will.
"""

from __future__ import annotations

from typing import Dict

from repro.graphs.answer_graph import AnswerGraph
from repro.types import Element


def score_candidates(evidence: AnswerGraph) -> Dict[Element, float]:
    """Run Algorithm 2: random-walk trap probabilities per candidate.

    Args:
        evidence: the DAG of all answers from previous rounds, over the
            *initial* collection (eliminated elements still carry energy
            that must flow to their conquerors).

    Returns:
        Mapping of each remaining candidate to its score.  Scores are
        positive and sum to 1 (up to floating-point error).  With no answers
        recorded yet, every element is a candidate with score ``1 / c_0``.
    """
    elements = evidence.elements
    energy: Dict[Element, float] = {e: 1.0 / len(elements) for e in elements}
    wins = evidence.transitive_wins()
    # Ascending transitive-wins order is a topological order of the answer
    # DAG: an edge u -> v (v beat u) implies wins(v) >= wins(u) + 1.
    for element in sorted(elements, key=lambda e: wins[e]):
        conquerors = evidence.winners_over(element)
        if not conquerors:
            continue  # a remaining candidate keeps (and accumulates) energy
        share = energy[element] / len(conquerors)
        for conqueror in conquerors:
            energy[conqueror] += share
        energy[element] = 0.0
    return {
        element: energy[element]
        for element in evidence.remaining_candidates()
    }
