"""The Tournament-formation question-selection algorithm (Section 5.2).

In each round the algorithm finds the lowest integer ``c_next`` such that
``Q(|C_j|, c_next) <= b_j`` — i.e. it forms the fewest tournaments the round
budget allows, because fewer (larger) tournaments eliminate more candidates.
If budget remains after forming the tournaments, the leftover is spent on
random questions between elements of *different* tournaments.

Elements are assigned to tournaments uniformly at random; scores from
previous rounds play no role (the paper's Section 5.2 description).
"""

from __future__ import annotations

from typing import List, Set

from repro.core.questions import fewest_tournaments_within
from repro.graphs.tournaments import form_tournaments, tournament_question_graph
from repro.selection.base import QuestionSelector, SelectionContext
from repro.types import Question, normalize_question


class TournamentFormation(QuestionSelector):
    """Form the fewest affordable tournaments; spend leftovers across them.

    Args:
        spend_leftover: when ``True`` (the paper's behaviour) budget left
            after forming the tournaments buys random cross-tournament
            questions; when ``False`` the leftover is simply not spent.
            The ``False`` variant exists for the leftover-spending ablation
            benchmark.
    """

    name = "Tournament"

    def __init__(self, spend_leftover: bool = True) -> None:
        self.spend_leftover = spend_leftover

    def select(self, ctx: SelectionContext) -> List[Question]:
        candidates = ctx.candidates
        if len(candidates) < 2 or ctx.budget == 0:
            return []
        n_tournaments = fewest_tournaments_within(len(candidates), ctx.budget)
        groups = form_tournaments(list(candidates), n_tournaments, ctx.rng)
        questions = tournament_question_graph(groups)
        leftover = ctx.budget - len(questions)
        if self.spend_leftover and leftover > 0 and n_tournaments > 1:
            questions.extend(
                _cross_tournament_extras(groups, leftover, set(questions), ctx)
            )
        return questions


def _cross_tournament_extras(
    groups: List[List[int]],
    leftover: int,
    already: Set[Question],
    ctx: SelectionContext,
) -> List[Question]:
    """Random distinct questions between elements of different tournaments."""
    group_of = {
        element: index for index, group in enumerate(groups) for element in group
    }
    members = [element for group in groups for element in group]
    extras: List[Question] = []
    # Rejection-sample random cross pairs; fall back to enumeration when the
    # leftover is a large fraction of the available cross pairs.
    attempts_left = 20 * leftover
    while leftover > 0 and attempts_left > 0:
        a, b = ctx.rng.choice(len(members), size=2, replace=False)
        first, second = members[a], members[b]
        if group_of[first] == group_of[second]:
            attempts_left -= 1
            continue
        pair = normalize_question(first, second)
        if pair in already:
            attempts_left -= 1
            continue
        already.add(pair)
        extras.append(pair)
        leftover -= 1
    if leftover > 0:
        # Dense regime: enumerate all remaining cross pairs and sample.
        remaining = [
            normalize_question(a, b)
            for i, a in enumerate(members)
            for b in members[i + 1 :]
            if group_of[a] != group_of[b]
            and normalize_question(a, b) not in already
        ]
        ctx.rng.shuffle(remaining)
        extras.extend(remaining[:leftover])
    return extras
