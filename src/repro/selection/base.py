"""The question-selector interface shared by all Section 5.2 strategies.

A question-selection algorithm receives, for round ``j``:

* ``b_j`` — the round's question budget (from the budget allocation), and
* ``C_j`` — the candidates that have not lost any comparison so far,

plus the evidence graph of all previous answers, and returns the set of
pairwise questions to post this round.

An important invariant simplifies every selector: **all pairs among current
candidates are unasked.**  Every answered pair produced a loser, and a loser
is no longer a candidate, so no two candidates have ever been compared.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from repro.errors import InvalidParameterError
from repro.graphs.answer_graph import AnswerGraph
from repro.types import Element, Question


@dataclass(frozen=True)
class SelectionContext:
    """Everything a selector may consult when picking a round's questions.

    Attributes:
        budget: ``b_j``, the maximum questions to post this round.
        candidates: ``C_j``, elements that have not lost any comparison.
        evidence: answer graph accumulated over rounds ``0 .. j-1``.
        round_index: zero-based index of the current round.
        total_rounds: number of rounds in the overall allocation.
        rng: randomness source (selectors must not use global randomness).
    """

    budget: int
    candidates: Tuple[Element, ...]
    evidence: AnswerGraph
    round_index: int
    total_rounds: int
    rng: np.random.Generator

    def __post_init__(self) -> None:
        if self.budget < 0:
            raise InvalidParameterError(f"round budget must be >= 0: {self.budget}")
        if not self.candidates:
            raise InvalidParameterError("a round needs at least one candidate")
        if not 0 <= self.round_index < max(self.total_rounds, 1):
            raise InvalidParameterError(
                f"round_index {self.round_index} outside "
                f"[0, {self.total_rounds})"
            )


class QuestionSelector(ABC):
    """Strategy that turns a round budget into concrete questions.

    Contract for :meth:`select`:

    * returns at most ``ctx.budget`` questions;
    * questions are distinct, in canonical ``(min, max)`` form, and only
      involve current candidates;
    * with fewer than two candidates, returns no questions.
    """

    #: Short name used in registries, experiment tables and plots.
    name: str = "selector"

    @abstractmethod
    def select(self, ctx: SelectionContext) -> List[Question]:
        """Pick the questions to post for this round."""

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


def all_pairs(candidates: Tuple[Element, ...]) -> List[Question]:
    """Every canonical pair among *candidates*."""
    ordered = sorted(candidates)
    return [
        (a, b)
        for i, a in enumerate(ordered)
        for b in ordered[i + 1 :]
    ]
