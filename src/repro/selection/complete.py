"""COMPLETE: exploit accumulated evidence on the strongest candidates.

COMPLETE (Section 5.2) spends part of the round budget on a single
tournament (clique) between the highest-scoring "strong" candidates and the
rest on questions linking every other candidate to the tournament, so that
each element is involved in at least one question.  Scores come from the
Appendix B.2 random-walk scoring function.

Given a budget ``b_j`` over ``c`` candidates, the tournament size ``k`` is
the largest value with ``C(k, 2) + (c - k) <= b_j`` (clique plus one
coverage question per outsider).  Leftover budget buys extra outsider ->
clique-member questions, then outsider pairs.  When even ``k = 2`` does not
fit, the round falls back to SPREAD's balanced random selection.
"""

from __future__ import annotations

from typing import List, Set

from repro.selection.base import QuestionSelector, SelectionContext
from repro.selection.scoring import score_candidates
from repro.selection.spread import Spread
from repro.types import Element, Question, normalize_question


def _largest_clique_size(n_candidates: int, budget: int) -> int:
    """Largest k with ``C(k, 2) + (n_candidates - k) <= budget``, or 0."""
    best = 0
    for k in range(2, n_candidates + 1):
        if k * (k - 1) // 2 + (n_candidates - k) <= budget:
            best = k
        else:
            break  # the cost is increasing in k (for k >= 2)
    return best


class Complete(QuestionSelector):
    """Clique over the strongest candidates + coverage for the rest."""

    name = "COMPLETE"

    def __init__(self) -> None:
        self._fallback = Spread()

    def select(self, ctx: SelectionContext) -> List[Question]:
        candidates = list(ctx.candidates)
        if len(candidates) < 2 or ctx.budget == 0:
            return []
        clique_size = _largest_clique_size(len(candidates), ctx.budget)
        if clique_size < 2:
            return self._fallback.select(ctx)
        scores = score_candidates(ctx.evidence)
        # Rank by score descending; unscored elements (possible when the
        # evidence graph knows a superset of candidates) rank last.
        ranked = sorted(
            candidates, key=lambda e: scores.get(e, 0.0), reverse=True
        )
        strong = ranked[:clique_size]
        outsiders = ranked[clique_size:]
        questions: List[Question] = [
            normalize_question(a, b)
            for i, a in enumerate(strong)
            for b in strong[i + 1 :]
        ]
        chosen: Set[Question] = set(questions)
        for outsider in outsiders:
            member = strong[int(ctx.rng.integers(len(strong)))]
            pair = normalize_question(outsider, member)
            chosen.add(pair)
            questions.append(pair)
        leftover = ctx.budget - len(questions)
        if leftover > 0:
            questions.extend(
                _extra_questions(strong, outsiders, leftover, chosen, ctx)
            )
        return questions


def _extra_questions(
    strong: List[Element],
    outsiders: List[Element],
    leftover: int,
    chosen: Set[Question],
    ctx: SelectionContext,
) -> List[Question]:
    """Spend leftover budget: outsider-to-clique pairs first, then outsider
    pairs (clique pairs are all asked already)."""
    pools = [
        [
            normalize_question(o, s)
            for o in outsiders
            for s in strong
            if normalize_question(o, s) not in chosen
        ],
        [
            normalize_question(a, b)
            for i, a in enumerate(outsiders)
            for b in outsiders[i + 1 :]
            if normalize_question(a, b) not in chosen
        ],
    ]
    extras: List[Question] = []
    for pool in pools:
        if leftover <= 0:
            break
        ctx.rng.shuffle(pool)
        take = pool[:leftover]
        extras.extend(take)
        leftover -= len(take)
    return extras
