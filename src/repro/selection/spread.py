"""SPREAD: degree-balanced random question selection (Section 5.2).

SPREAD "randomly selects pairs of elements, as long as each element is
involved in the same number of questions".  We realize this with successive
random matchings over the candidates, chosen degree-aware: every sweep pairs
up the currently lowest-degree elements (random tie-break) while avoiding
pairs picked in earlier sweeps, so after any prefix of the selection the
per-element degrees stay within a small band of each other.
"""

from __future__ import annotations

from typing import Dict, List, Set

from repro.selection.base import QuestionSelector, SelectionContext, all_pairs
from repro.types import Element, Question, normalize_question


class Spread(QuestionSelector):
    """Random questions with per-element degree kept as equal as possible."""

    name = "SPREAD"

    def select(self, ctx: SelectionContext) -> List[Question]:
        candidates = list(ctx.candidates)
        if len(candidates) < 2 or ctx.budget == 0:
            return []
        max_pairs = len(candidates) * (len(candidates) - 1) // 2
        target = min(ctx.budget, max_pairs)
        chosen: Set[Question] = set()
        degrees: Dict[Element, int] = {e: 0 for e in candidates}
        questions: List[Question] = []
        stale_sweeps = 0
        while len(questions) < target and stale_sweeps < 5:
            added = self._sweep(
                candidates, target - len(questions), chosen, degrees, ctx
            )
            questions.extend(added)
            stale_sweeps = stale_sweeps + 1 if not added else 0
        if len(questions) < target:
            # The matchings got stuck on a few missing pairs (dense regime);
            # finish from the leftover pairs, lowest-degree endpoints first.
            leftovers = [
                pair for pair in all_pairs(ctx.candidates) if pair not in chosen
            ]
            ctx.rng.shuffle(leftovers)
            leftovers.sort(key=lambda pair: degrees[pair[0]] + degrees[pair[1]])
            questions.extend(leftovers[: target - len(questions)])
        return questions

    @staticmethod
    def _sweep(
        candidates: List[Element],
        budget: int,
        chosen: Set[Question],
        degrees: Dict[Element, int],
        ctx: SelectionContext,
    ) -> List[Question]:
        """One matching sweep: greedily pair lowest-degree elements first,
        skipping pairs already chosen in previous sweeps."""
        order = list(candidates)
        ctx.rng.shuffle(order)
        order.sort(key=degrees.__getitem__)  # stable: random tie-break
        unmatched = order
        added: List[Question] = []
        index = 0
        while index < len(unmatched) - 1 and len(added) < budget:
            first = unmatched[index]
            partner_position = None
            for offset in range(index + 1, len(unmatched)):
                pair = normalize_question(first, unmatched[offset])
                if pair not in chosen:
                    partner_position = offset
                    break
            if partner_position is None:
                index += 1  # every remaining partner already met this one
                continue
            partner = unmatched.pop(partner_position)
            unmatched.pop(index)
            pair = normalize_question(first, partner)
            chosen.add(pair)
            degrees[first] += 1
            degrees[partner] += 1
            added.append(pair)
        return added
