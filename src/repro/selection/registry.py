"""Name-based registry of question selectors, used by the CLI and experiments."""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.errors import InvalidParameterError
from repro.selection.base import QuestionSelector
from repro.selection.complete import Complete
from repro.selection.ct import ct25, ct50, ct75
from repro.selection.greedy import Greedy, SpreadGreedy
from repro.selection.spread import Spread
from repro.selection.tournament import TournamentFormation

_FACTORIES: Dict[str, Callable[[], QuestionSelector]] = {
    "Tournament": TournamentFormation,
    "SPREAD": Spread,
    "COMPLETE": Complete,
    "CT25": ct25,
    "CT50": ct50,
    "CT75": ct75,
    "GREEDY": Greedy,
    "SG25": SpreadGreedy,
}


def available_selectors() -> List[str]:
    """Names of all registered question-selection algorithms."""
    return sorted(_FACTORIES)


def selector_by_name(name: str) -> QuestionSelector:
    """Instantiate the selector registered under *name* (case-insensitive).

    Raises:
        InvalidParameterError: for unknown names, listing the valid ones.
    """
    lowered = {key.lower(): factory for key, factory in _FACTORIES.items()}
    factory = lowered.get(name.lower())
    if factory is None:
        raise InvalidParameterError(
            f"unknown selector {name!r}; available: {available_selectors()}"
        )
    return factory()
