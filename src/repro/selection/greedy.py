"""GREEDY: concentrate questions on the likeliest MAX candidates.

Section 5.2 mentions a second exploitation strategy the authors tried:
combining SPREAD with the GREEDY question-selection algorithm of Guo et
al. [10] ("So who won? Dynamic max discovery with the crowd", SIGMOD 2012).
The defining idea of that family is to pick the next comparisons that are
most likely to involve (and hence eliminate competitors of) the true MAX,
as judged from the evidence so far.

This implementation ranks candidate pairs by the combined Appendix B.2
scores of their endpoints and asks the top-budget pairs: the strongest
candidates get compared against each other first, then against
progressively weaker ones.  Like COMPLETE it is an *exploitation* strategy
and needs score diversity to do anything smarter than SPREAD, so it is
usually wrapped in a :class:`repro.selection.ct.CTSelector`-style schedule
with an exploration phase first.
"""

from __future__ import annotations

import math
from typing import List

from repro.errors import InvalidParameterError
from repro.selection.base import QuestionSelector, SelectionContext
from repro.selection.scoring import score_candidates
from repro.selection.spread import Spread
from repro.types import Question, normalize_question


class Greedy(QuestionSelector):
    """Ask the pairs with the highest combined candidate scores."""

    name = "GREEDY"

    def select(self, ctx: SelectionContext) -> List[Question]:
        candidates = list(ctx.candidates)
        if len(candidates) < 2 or ctx.budget == 0:
            return []
        scores = score_candidates(ctx.evidence)
        # Shuffle first so that equal-score pairs tie-break randomly, then
        # sort by combined score (stable sort keeps the shuffle inside ties).
        ctx.rng.shuffle(candidates)
        ranked = sorted(
            candidates, key=lambda e: scores.get(e, 0.0), reverse=True
        )
        pairs = [
            normalize_question(a, b)
            for i, a in enumerate(ranked)
            for b in ranked[i + 1 :]
        ]
        pairs.sort(
            key=lambda pair: scores.get(pair[0], 0.0) + scores.get(pair[1], 0.0),
            reverse=True,
        )
        return pairs[: ctx.budget]


class SpreadGreedy(QuestionSelector):
    """SPREAD in the first ``fraction`` of the rounds, GREEDY afterwards.

    The SPREAD+GREEDY combination the paper reports trying alongside CT25
    (Section 5.2's closing paragraph).
    """

    name = "SG25"

    def __init__(self, spread_fraction: float = 0.25) -> None:
        if not 0.0 < spread_fraction < 1.0:
            raise InvalidParameterError(
                f"spread_fraction must be in (0, 1), got {spread_fraction}"
            )
        self.spread_fraction = spread_fraction
        self.name = f"SG{int(round(spread_fraction * 100))}"
        self._spread = Spread()
        self._greedy = Greedy()

    def spread_rounds(self, total_rounds: int) -> int:
        """How many leading rounds SPREAD gets (same rule as CT selectors)."""
        return max(1, math.floor(self.spread_fraction * total_rounds))

    def select(self, ctx: SelectionContext) -> List[Question]:
        if ctx.round_index < self.spread_rounds(ctx.total_rounds):
            return self._spread.select(ctx)
        return self._greedy.select(ctx)
