"""Synthetic collections mirroring the paper's workloads.

The paper's experiments use 500 car photos and ask workers "which of the
two cars is the most expensive?".  The MAX machinery only needs the hidden
*order*, but examples and demos read better with named items and latent
values, so this module generates labelled collections whose ground truth
derives from the values.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.crowd.ground_truth import GroundTruth
from repro.errors import InvalidParameterError

_CAR_MAKES = (
    "Aurora", "Bellwether", "Cavallo", "Dynastar", "Elettra", "Falcon",
    "Granturismo", "Helios", "Ivory", "Jetstream", "Kestrel", "Luminar",
)
_CAR_MODELS = (
    "GT", "RS", "Turbo", "Spyder", "Quattro", "Sport", "Classic", "EV",
    "Coupe", "Estate", "Roadster", "Phantom",
)

_RESPONSE_OPENERS = (
    "Our record shows", "Voters deserve to know", "The facts are clear:",
    "Let's be honest:", "Families in this state know", "History teaches us",
    "The numbers say", "My opponent forgets",
)
_RESPONSE_TOPICS = (
    "the economy", "healthcare", "education", "public safety",
    "infrastructure", "the budget", "jobs", "energy policy",
)


@dataclass(frozen=True)
class Collection:
    """A labelled collection with latent values defining the true order.

    Attributes:
        name: what the collection contains (e.g. ``cars``).
        labels: one human-readable label per element ``0..n-1``.
        values: the latent quality per element; higher is better.  Values
            are guaranteed distinct so the induced order is strict, as the
            paper's problem definition requires.
    """

    name: str
    labels: Tuple[str, ...]
    values: Tuple[float, ...]

    def __post_init__(self) -> None:
        if len(self.labels) != len(self.values):
            raise InvalidParameterError("labels and values must align")
        if not self.labels:
            raise InvalidParameterError("a collection needs at least one item")
        if len(set(self.values)) != len(self.values):
            raise InvalidParameterError(
                "values must be distinct (the true order is strict)"
            )

    def __len__(self) -> int:
        return len(self.labels)

    def ground_truth(self) -> GroundTruth:
        """The hidden order induced by the values (best first)."""
        order = sorted(
            range(len(self.values)),
            key=lambda element: self.values[element],
            reverse=True,
        )
        return GroundTruth(order)

    def label(self, element: int) -> str:
        """Human-readable label of one element."""
        try:
            return self.labels[element]
        except IndexError:
            raise InvalidParameterError(f"unknown element {element}") from None


def _distinct(values: np.ndarray) -> Tuple[float, ...]:
    """Break ties deterministically by adding a tiny index-based epsilon."""
    return tuple(
        float(value) + 1e-9 * index for index, value in enumerate(values)
    )


def car_collection(
    n_items: int, rng: np.random.Generator, mean_price: float = 40_000.0
) -> Collection:
    """Cars with lognormal prices — the paper's evaluation collection.

    Labels look like "Cavallo Turbo #17"; the value is the price in
    dollars, so the MAX is the most expensive car.
    """
    if n_items < 1:
        raise InvalidParameterError("n_items must be >= 1")
    sigma = 0.6
    mu = np.log(mean_price) - sigma**2 / 2
    prices = rng.lognormal(mean=mu, sigma=sigma, size=n_items)
    labels = tuple(
        f"{_CAR_MAKES[int(rng.integers(len(_CAR_MAKES)))]} "
        f"{_CAR_MODELS[int(rng.integers(len(_CAR_MODELS)))]} #{index}"
        for index in range(n_items)
    )
    return Collection(name="cars", labels=labels, values=_distinct(prices))


def photo_collection(n_items: int, rng: np.random.Generator) -> Collection:
    """Photos with uniform aesthetic scores (a generic subjective task)."""
    if n_items < 1:
        raise InvalidParameterError("n_items must be >= 1")
    scores = rng.uniform(0.0, 10.0, size=n_items)
    labels = tuple(f"photo-{index:04d}" for index in range(n_items))
    return Collection(name="photos", labels=labels, values=_distinct(scores))


def debate_responses(n_items: int, rng: np.random.Generator) -> Collection:
    """Campaign responses with normally distributed persuasiveness.

    The introduction's motivating workload: pick the strongest response to
    an opponent's attack the day before the election.
    """
    if n_items < 1:
        raise InvalidParameterError("n_items must be >= 1")
    strength = rng.normal(loc=50.0, scale=15.0, size=n_items)
    labels = tuple(
        f"{_RESPONSE_OPENERS[int(rng.integers(len(_RESPONSE_OPENERS)))]} "
        f"{_RESPONSE_TOPICS[int(rng.integers(len(_RESPONSE_TOPICS)))]} "
        f"(draft {index})"
        for index in range(n_items)
    )
    return Collection(
        name="debate-responses", labels=labels, values=_distinct(strength)
    )
