"""MaxSession: drive the MAX operation against a *real* platform.

:class:`repro.engine.max_engine.MaxEngine` owns the control loop and pulls
answers from an :class:`AnswerSource` — perfect for simulation.  A real
deployment is the other way round: the caller posts questions to an actual
crowdsourcing platform, waits however long that takes, and pushes the
answers back when they arrive.  :class:`MaxSession` supports exactly that
inversion of control:

    session = MaxSession(allocation, selector, n_elements=500, rng=rng)
    while not session.done:
        batch = session.pending_questions()
        answers = my_platform.ask(batch)          # hours may pass here
        session.submit(answers)
    print(session.winner)

Sessions are checkpointable: the evidence graph is exposed and can be
persisted with :mod:`repro.persistence` between rounds.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Tuple

import numpy as np

from repro.core.allocation import Allocation
from repro.errors import InvalidParameterError, ReproError
from repro.graphs.answer_graph import AnswerGraph
from repro.selection.base import QuestionSelector, SelectionContext
from repro.selection.scoring import score_candidates
from repro.types import Answer, Element, Question, normalize_question


class SessionStateError(ReproError):
    """The session was driven out of order (e.g. submit before asking)."""


class MaxSession:
    """Round-by-round, caller-driven crowdsourced MAX.

    Args:
        allocation: the per-round question budgets (e.g. from tDP).
        selector: the question-selection strategy.
        n_elements: size of the input collection.
        rng: randomness source for the selector.

    The session walks the allocation's rounds: :meth:`pending_questions`
    returns the current round's questions (selecting them on first call),
    and :meth:`submit` consumes exactly one answer per pending question,
    after which the next round (or termination) is reached.  Rounds whose
    budget cannot buy any questions are skipped automatically.
    """

    def __init__(
        self,
        allocation: Allocation,
        selector: QuestionSelector,
        n_elements: int,
        rng: np.random.Generator,
    ) -> None:
        if n_elements < 1:
            raise InvalidParameterError(
                f"n_elements must be >= 1, got {n_elements}"
            )
        self.allocation = allocation
        self.selector = selector
        self._rng = rng
        self.evidence = AnswerGraph(range(n_elements))
        self._candidates: Tuple[Element, ...] = tuple(range(n_elements))
        self._round_index = 0
        self._pending: Optional[List[Question]] = None
        self._questions_posted = 0
        self._rounds_executed = 0
        self._advance_past_empty_rounds()

    # ------------------------------------------------------------------
    # State
    # ------------------------------------------------------------------
    @property
    def done(self) -> bool:
        """True once a single candidate remains or the rounds are spent."""
        return self._pending is None and (
            len(self._candidates) == 1
            or self._round_index >= self.allocation.rounds
        )

    @property
    def singleton_termination(self) -> bool:
        """Whether exactly one candidate remains."""
        return len(self._candidates) == 1

    @property
    def winner(self) -> Element:
        """The declared MAX.  Only available once :attr:`done`.

        With several surviving candidates the highest-scoring one is
        declared, as in the batch engine.
        """
        if not self.done:
            raise SessionStateError(
                "the session is still running; submit the pending answers"
            )
        if len(self._candidates) == 1:
            return self._candidates[0]
        scores = score_candidates(self.evidence)
        return max(scores, key=lambda element: (scores[element], -element))

    @property
    def candidates(self) -> Tuple[Element, ...]:
        """Elements that have not lost any comparison yet."""
        return self._candidates

    @property
    def round_index(self) -> int:
        """Zero-based index of the current (or next) allocation round."""
        return self._round_index

    @property
    def questions_posted(self) -> int:
        """Distinct questions handed out so far."""
        return self._questions_posted

    @property
    def rounds_executed(self) -> int:
        """Rounds that actually asked questions."""
        return self._rounds_executed

    @property
    def awaiting_answers(self) -> bool:
        """True while a selected round has been handed out but not resolved.

        A session in this state cannot be checkpointed: the pending
        questions live only in the caller's hands, so persist between
        rounds (after :meth:`submit`) instead.
        """
        return self._pending is not None

    @property
    def rng(self) -> np.random.Generator:
        """The selector randomness source (exposed for checkpointing)."""
        return self._rng

    @property
    def pending(self) -> Optional[List[Question]]:
        """The handed-out round's questions, or ``None`` between rounds.

        Exposed so mid-round checkpoints (the service journal snapshots
        between scheduler ticks, which can land inside a round) can
        persist the exact selected questions without re-running the
        selector.  Unlike :meth:`pending_questions` this never selects.
        """
        return list(self._pending) if self._pending is not None else None

    # ------------------------------------------------------------------
    # Checkpointing
    # ------------------------------------------------------------------
    @classmethod
    def restore(
        cls,
        allocation: Allocation,
        selector: QuestionSelector,
        n_elements: int,
        rng: np.random.Generator,
        *,
        evidence: AnswerGraph,
        round_index: int,
        questions_posted: int,
        rounds_executed: int,
        pending: Optional[Iterable[Question]] = None,
    ) -> "MaxSession":
        """Rebuild a session from checkpointed state.

        The counterpart of :func:`repro.persistence.session_to_dict`; the
        evidence graph is adopted as-is, the candidate set is re-derived
        from it, and empty upcoming rounds are skipped exactly as a live
        session would have.

        With *pending* the session resumes *mid-round*: the given
        questions are adopted as the already-handed-out round (in order,
        no re-selection), and the next :meth:`submit` resolves them.  The
        RNG must then carry the post-selection state the checkpoint saved.

        Raises:
            InvalidParameterError: if the checkpointed state is internally
                inconsistent with the allocation or collection size.
        """
        session = cls(allocation, selector, n_elements, rng)
        if evidence.elements != session.evidence.elements:
            raise InvalidParameterError(
                f"checkpointed evidence covers {len(evidence.elements)} "
                f"elements, expected {n_elements}"
            )
        if not 0 <= round_index <= allocation.rounds:
            raise InvalidParameterError(
                f"round_index {round_index} outside the allocation's "
                f"{allocation.rounds} rounds"
            )
        if questions_posted < 0 or rounds_executed < 0:
            raise InvalidParameterError(
                "questions_posted and rounds_executed must be >= 0"
            )
        session.evidence = evidence
        session._candidates = tuple(sorted(evidence.remaining_candidates()))
        session._round_index = round_index
        session._questions_posted = questions_posted
        session._rounds_executed = rounds_executed
        session._pending = None
        session._advance_past_empty_rounds()
        if pending is not None:
            pending_list = [(int(a), int(b)) for a, b in pending]
            if not pending_list:
                raise InvalidParameterError(
                    "a mid-round checkpoint must carry at least one "
                    "pending question"
                )
            if round_index >= allocation.rounds:
                raise InvalidParameterError(
                    f"pending questions recorded for round {round_index}, "
                    f"but the allocation has only {allocation.rounds} rounds"
                )
            if session._round_index != round_index:
                # _advance_past_empty_rounds moved on, yet the checkpoint
                # says questions were handed out in round_index — a round
                # with pending questions has budget >= 1, contradiction.
                raise InvalidParameterError(
                    f"pending questions recorded for round {round_index}, "
                    f"but that round has zero budget"
                )
            if len(pending_list) > allocation.round_budgets[round_index]:
                raise InvalidParameterError(
                    f"{len(pending_list)} pending questions exceed round "
                    f"{round_index}'s budget of "
                    f"{allocation.round_budgets[round_index]}"
                )
            session._pending = pending_list
        return session

    # ------------------------------------------------------------------
    # Driving
    # ------------------------------------------------------------------
    def pending_questions(self) -> List[Question]:
        """The questions of the current round (selected on first call).

        Returns the same list until :meth:`submit` resolves it.  Raises
        :class:`SessionStateError` when the session is finished.
        """
        if self.done:
            raise SessionStateError("the session has finished")
        if self._pending is None:
            context = SelectionContext(
                budget=self.allocation.round_budgets[self._round_index],
                candidates=self._candidates,
                evidence=self.evidence,
                round_index=self._round_index,
                total_rounds=self.allocation.rounds,
                rng=self._rng,
            )
            questions = self.selector.select(context)
            if len(questions) > context.budget:
                raise InvalidParameterError(
                    f"selector {self.selector.name} exceeded the round budget"
                )
            self._pending = questions
            if not questions:
                # Nothing askable this round; skip it transparently.
                self._pending = None
                self._round_index += 1
                self._advance_past_empty_rounds()
                if not self.done:
                    return self.pending_questions()
                raise SessionStateError("the session has finished")
        return list(self._pending)

    def submit(self, answers: Iterable[Answer]) -> None:
        """Resolve the pending round with one answer per pending question.

        Raises:
            SessionStateError: if no round is pending, or if the answers do
                not match the pending questions exactly (missing, extra or
                foreign answers) — accepting them would silently corrupt
                the evidence graph.
        """
        if self._pending is None:
            raise SessionStateError(
                "no pending questions; call pending_questions() first"
            )
        answers = list(answers)
        expected = {normalize_question(a, b) for a, b in self._pending}
        provided = {answer.question for answer in answers}
        if provided != expected or len(answers) != len(expected):
            missing = expected - provided
            extra = provided - expected
            raise SessionStateError(
                f"answers do not match the pending questions "
                f"(missing: {sorted(missing)[:5]}, extra: {sorted(extra)[:5]})"
            )
        self.evidence.record_all(answers)
        self._questions_posted += len(self._pending)
        self._rounds_executed += 1
        self._candidates = tuple(sorted(self.evidence.remaining_candidates()))
        self._pending = None
        self._round_index += 1
        self._advance_past_empty_rounds()

    def _advance_past_empty_rounds(self) -> None:
        """Skip trailing zero-budget rounds so ``done`` reflects reality."""
        budgets = self.allocation.round_budgets
        while (
            len(self._candidates) > 1
            and self._round_index < len(budgets)
            and budgets[self._round_index] == 0
        ):
            self._round_index += 1
