"""Adversarial (worst-case) execution of the MAX operation.

Section 4 analyzes the *worst case*: after each round the answers are the
ones that keep the maximum number of candidates alive (the maxRC set of
the round's question graph, which equals its maximum independent set by
Theorem 2).  This module executes any (allocation, selector) combination
against exactly that adversary, so Theorem 4 — no combination beats tDP +
Tournament formation in the worst case — can be probed experimentally for
selectors whose worst case is hard to reason about (SPREAD, CT25, ...).

Computing a maximum independent set is NP-hard, so the adversary offers
two modes: ``exact`` (branch-and-bound; fine for the paper-scale rounds of
tournament graphs and for small collections) and ``greedy`` (min-degree
heuristic; a *legal but possibly suboptimal* adversary, i.e. the reported
latency is a lower bound on the true worst case).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Set, Tuple

import numpy as np

from repro.core.allocation import Allocation
from repro.core.latency import LatencyFunction
from repro.engine.results import MaxRunResult, RoundRecord
from repro.errors import InvalidParameterError
from repro.graphs.answer_graph import AnswerGraph
from repro.graphs.candidates import max_independent_set, worst_case_answers
from repro.selection.base import QuestionSelector, SelectionContext
from repro.selection.scoring import score_candidates
from repro.types import Element, Question


def greedy_independent_set(
    elements: Iterable[Element], questions: Iterable[Question]
) -> Set[Element]:
    """A maximal independent set via the min-degree greedy heuristic.

    Repeatedly keeps a minimum-degree vertex and discards its neighbors.
    Not necessarily maximum, but always independent and maximal — a legal
    adversary choice.
    """
    adjacency: Dict[Element, Set[Element]] = {e: set() for e in elements}
    for a, b in questions:
        if a not in adjacency or b not in adjacency:
            raise InvalidParameterError(
                f"question ({a}, {b}) references elements outside the graph"
            )
        adjacency[a].add(b)
        adjacency[b].add(a)
    active = set(adjacency)
    chosen: Set[Element] = set()
    while active:
        vertex = min(active, key=lambda v: (len(adjacency[v] & active), v))
        chosen.add(vertex)
        active -= adjacency[vertex] | {vertex}
    return chosen


class AdversarialMaxEngine:
    """Run an allocation against worst-case (maxRC) answers.

    Args:
        selector: the question-selection strategy under test.
        latency: latency model pricing each round at ``L(q posted)``.
        rng: randomness source for the selector.
        mode: ``"exact"`` (true maxRC via exact MIS) or ``"greedy"``
            (heuristic adversary; lower-bounds the worst case).
    """

    def __init__(
        self,
        selector: QuestionSelector,
        latency: LatencyFunction,
        rng: np.random.Generator,
        mode: str = "greedy",
    ) -> None:
        if mode not in ("exact", "greedy"):
            raise InvalidParameterError(
                f"mode must be 'exact' or 'greedy', got {mode!r}"
            )
        self.selector = selector
        self.latency = latency
        self.mode = mode
        self._rng = rng

    def run(self, n_elements: int, allocation: Allocation) -> MaxRunResult:
        """Execute *allocation* with the adversary answering every round.

        There is no hidden ground truth: the adversary invents a consistent
        order on the fly (the Lemma 2 construction guarantees the combined
        answers stay acyclic, because each round's surviving set is ranked
        above everything it is compared with).  The reported ``true_max``
        is the eventual winner itself, so ``correct`` is vacuously true;
        the quantities of interest are latency, rounds and the singleton
        flag.
        """
        if n_elements < 1:
            raise InvalidParameterError(
                f"n_elements must be >= 1, got {n_elements}"
            )
        evidence = AnswerGraph(range(n_elements))
        candidates: Tuple[Element, ...] = tuple(range(n_elements))
        records: List[RoundRecord] = []
        total_latency = 0.0
        total_questions = 0
        for round_index, budget in enumerate(allocation.round_budgets):
            if len(candidates) <= 1:
                break
            context = SelectionContext(
                budget=budget,
                candidates=candidates,
                evidence=evidence,
                round_index=round_index,
                total_rounds=allocation.rounds,
                rng=self._rng,
            )
            questions = self.selector.select(context)
            if not questions:
                continue
            survivors = self._adversary_survivors(candidates, questions)
            answers = worst_case_answers(candidates, questions, survivors)
            evidence.record_all(answers)
            next_candidates = tuple(sorted(evidence.remaining_candidates()))
            records.append(
                RoundRecord(
                    round_index=round_index,
                    budget=budget,
                    candidates_before=len(candidates),
                    questions_posted=len(questions),
                    latency=self.latency(len(questions)),
                    candidates_after=len(next_candidates),
                )
            )
            total_latency += self.latency(len(questions))
            total_questions += len(questions)
            candidates = next_candidates
        singleton = len(candidates) == 1
        if singleton:
            winner = candidates[0]
        else:
            scores = score_candidates(evidence)
            winner = max(scores, key=lambda e: (scores[e], -e))
        return MaxRunResult(
            winner=winner,
            true_max=winner,  # the adversary never committed to an order
            singleton_termination=singleton,
            total_latency=total_latency,
            total_questions=total_questions,
            records=tuple(records),
            allocation=allocation,
        )

    def _adversary_survivors(
        self, candidates: Tuple[Element, ...], questions: List[Question]
    ) -> Set[Element]:
        if self.mode == "exact":
            return max_independent_set(candidates, questions)
        return greedy_independent_set(candidates, questions)
