"""Adaptive re-planning: re-run tDP from the current state each round.

The dynamic-programming insight of Section 3 (Figure 5) is that the
lowest-latency continuation from a state of ``c`` surviving candidates and
``q`` remaining questions does not depend on how the state was reached.
The static tDP plan exploits this offline; this module exploits it
*online*: after every round it re-solves MinLatency for the actual
(candidates, remaining budget) state and uses the new plan's first round.

With pure tournament selection and error-free answers the execution always
lands exactly on the planned state, so adaptivity changes nothing — a
property the test suite checks.  Adaptivity pays off whenever rounds
eliminate more candidates than the worst case guarantees: leftover
cross-tournament questions, exploiting selectors (CT25/GREEDY), or an eDP
first round.  The remaining budget is then re-invested optimally instead
of following a stale plan.

The same mechanism is the adaptive engine's graceful degradation under
platform faults (:mod:`repro.crowd.faults`): when a lossy round resolves
fewer answers than it posted, the next iteration simply re-plans from the
actual surviving candidates and leftover budget.
"""

from __future__ import annotations

import logging
from typing import List, Optional, Tuple

import numpy as np

from repro.core.latency import LatencyFunction
from repro.core.tdp import solve_min_latency
from repro.crowd.ground_truth import GroundTruth
from repro.engine.max_engine import AnswerSource
from repro.engine.results import MaxRunResult, RoundRecord
from repro.errors import InvalidParameterError
from repro.graphs.answer_graph import AnswerGraph
from repro.obs.events import (
    AnswersReceived,
    CandidateSetShrunk,
    RoundPosted,
    RunFinished,
    RunStarted,
)
from repro.obs.metrics import get_registry
from repro.obs.spans import close_span, open_span, span_scope
from repro.obs.tracer import Tracer, current_tracer
from repro.selection.base import QuestionSelector, SelectionContext
from repro.selection.scoring import score_candidates
from repro.types import Element

logger = logging.getLogger(__name__)


class AdaptiveMaxEngine:
    """MAX operator that re-plans the budget split after every round.

    Args:
        selector: question-selection strategy for each round.
        source: answer source (oracle or platform).
        latency: the latency model tDP plans against.
        rng: randomness source.
        max_rounds: safety bound on re-planning iterations (a correct
            selector terminates long before this).
    """

    def __init__(
        self,
        selector: QuestionSelector,
        source: AnswerSource,
        latency: LatencyFunction,
        rng: np.random.Generator,
        max_rounds: int = 10_000,
        tracer: Optional[Tracer] = None,
    ) -> None:
        if max_rounds < 1:
            raise InvalidParameterError(f"max_rounds must be >= 1: {max_rounds}")
        self.selector = selector
        self.source = source
        self.latency = latency
        self._rng = rng
        self.max_rounds = max_rounds
        self._tracer = tracer

    def run(self, truth: GroundTruth, budget: int) -> MaxRunResult:
        """Find the MAX of *truth*'s collection within *budget* questions.

        Unlike :class:`repro.engine.max_engine.MaxEngine` there is no
        precomputed allocation: each round's budget is the first round of a
        fresh tDP plan for the current state.
        """
        n_elements = truth.n_elements
        if budget < n_elements - 1:
            raise InvalidParameterError(
                f"budget {budget} < c0 - 1 = {n_elements - 1} (Theorem 1)"
            )
        evidence = AnswerGraph(range(n_elements))
        candidates: Tuple[Element, ...] = tuple(range(n_elements))
        remaining = budget
        records: List[RoundRecord] = []
        total_latency = 0.0
        total_questions = 0
        tracer = self._tracer if self._tracer is not None else current_tracer()
        registry = get_registry()
        registry.counter("engine.runs").inc()
        # Structural root-span id (see MaxEngine.run for the rationale).
        run_span = f"run{getattr(tracer, 'emitted', 0)}"
        if tracer.enabled:
            open_span(
                tracer,
                run_span,
                "run",
                start=0.0,
                detail=f"{type(self).__name__} c0={n_elements}",
            )
            tracer.emit(
                RunStarted(
                    n_elements=n_elements,
                    budget=budget,
                    rounds_planned=0,
                    engine=type(self).__name__,
                ),
                sim_time=0.0,
            )
        for round_index in range(self.max_rounds):
            if len(candidates) <= 1:
                break
            plan = solve_min_latency(len(candidates), remaining, self.latency)
            round_budget = plan.questions_for_first_round()
            context = SelectionContext(
                budget=round_budget,
                candidates=candidates,
                evidence=evidence,
                round_index=round_index,
                # The current plan's horizon; selectors that split rounds
                # into phases (CT25) see a consistent total.
                total_rounds=max(plan.rounds, round_index + 1),
                rng=self._rng,
            )
            questions = self.selector.select(context)
            if not questions:
                # Nothing askable: accept the current candidates.
                logger.debug(
                    "round %d: selector %s returned no questions for %d "
                    "candidates; accepting the current candidate set",
                    round_index,
                    self.selector.name,
                    len(candidates),
                )
                break
            round_span = f"{run_span}/r{round_index}"
            if tracer.enabled:
                open_span(
                    tracer,
                    round_span,
                    "round",
                    start=total_latency,
                    parent_id=run_span,
                    detail=f"{len(questions)} questions",
                )
                tracer.emit(
                    RoundPosted(
                        round_index=round_index,
                        budget=round_budget,
                        questions_posted=len(questions),
                        candidates_before=len(candidates),
                    ),
                    sim_time=total_latency,
                )
            with span_scope(round_span, base_time=total_latency):
                answers, latency = self.source.resolve(questions)
            evidence.record_all(answers)
            next_candidates = tuple(sorted(evidence.remaining_candidates()))
            if tracer.enabled:
                close_span(tracer, round_span, end=total_latency + latency)
                tracer.emit(
                    AnswersReceived(
                        round_index=round_index,
                        n_answers=len(answers),
                        latency=latency,
                    ),
                    sim_time=total_latency + latency,
                )
                tracer.emit(
                    CandidateSetShrunk(
                        round_index=round_index,
                        candidates_before=len(candidates),
                        candidates_after=len(next_candidates),
                    ),
                    sim_time=total_latency + latency,
                )
                tracer.advance_sim(latency)
            registry.counter("engine.rounds").inc()
            registry.counter("engine.questions_posted").inc(len(questions))
            registry.counter("engine.answers_resolved").inc(len(answers))
            registry.histogram("engine.candidates_after").observe(
                len(next_candidates)
            )
            logger.debug(
                "round %d: %d -> %d candidates, %d questions, %.1f s "
                "(replanned budget %d)",
                round_index,
                len(candidates),
                len(next_candidates),
                len(questions),
                latency,
                round_budget,
            )
            records.append(
                RoundRecord(
                    round_index=round_index,
                    budget=round_budget,
                    candidates_before=len(candidates),
                    questions_posted=len(questions),
                    latency=latency,
                    candidates_after=len(next_candidates),
                )
            )
            total_latency += latency
            total_questions += len(questions)
            remaining -= len(questions)
            candidates = next_candidates
            distinct_posted = len(dict.fromkeys(questions))
            if len(answers) < distinct_posted:
                # A lossy answer source gave up on some questions.  No
                # special recovery is needed here: the next iteration
                # re-solves MinLatency for the actual surviving candidates
                # and leftover budget, which *is* the graceful degradation.
                registry.counter("engine.degraded_rounds").inc()
                logger.warning(
                    "round %d degraded: %d of %d questions unanswered; "
                    "re-planning %d remaining questions over %d candidates",
                    round_index,
                    distinct_posted - len(answers),
                    distinct_posted,
                    remaining,
                    len(candidates),
                )
            if remaining < len(candidates) - 1:
                # Cannot guarantee further progress (Theorem 1).
                logger.debug(
                    "stopping: %d remaining questions cannot guarantee "
                    "progress on %d candidates (Theorem 1)",
                    remaining,
                    len(candidates),
                )
                break
        singleton = len(candidates) == 1
        if singleton:
            winner = candidates[0]
        else:
            scores = score_candidates(evidence)
            winner = max(scores, key=lambda element: (scores[element], -element))
            logger.debug(
                "non-singleton termination: %d candidates remain after %d "
                "rounds; declaring the highest-scoring one (%d)",
                len(candidates),
                len(records),
                winner,
            )
        if tracer.enabled:
            tracer.emit(
                RunFinished(
                    winner=int(winner),
                    rounds_run=len(records),
                    total_questions=total_questions,
                    total_latency=total_latency,
                    singleton=singleton,
                ),
                sim_time=total_latency,
            )
            close_span(tracer, run_span, end=total_latency)
        return MaxRunResult(
            winner=winner,
            true_max=truth.max_element,
            singleton_termination=singleton,
            total_latency=total_latency,
            total_questions=total_questions,
            records=tuple(records),
            allocation=None,
        )
