"""Adaptive re-planning: re-run tDP from the current state each round.

The dynamic-programming insight of Section 3 (Figure 5) is that the
lowest-latency continuation from a state of ``c`` surviving candidates and
``q`` remaining questions does not depend on how the state was reached.
The static tDP plan exploits this offline; this module exploits it
*online*: after every round it re-solves MinLatency for the actual
(candidates, remaining budget) state and uses the new plan's first round.

With pure tournament selection and error-free answers the execution always
lands exactly on the planned state, so adaptivity changes nothing — a
property the test suite checks.  Adaptivity pays off whenever rounds
eliminate more candidates than the worst case guarantees: leftover
cross-tournament questions, exploiting selectors (CT25/GREEDY), or an eDP
first round.  The remaining budget is then re-invested optimally instead
of following a stale plan.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from repro.core.latency import LatencyFunction
from repro.core.tdp import solve_min_latency
from repro.crowd.ground_truth import GroundTruth
from repro.engine.max_engine import AnswerSource
from repro.engine.results import MaxRunResult, RoundRecord
from repro.errors import InvalidParameterError
from repro.graphs.answer_graph import AnswerGraph
from repro.selection.base import QuestionSelector, SelectionContext
from repro.selection.scoring import score_candidates
from repro.types import Element


class AdaptiveMaxEngine:
    """MAX operator that re-plans the budget split after every round.

    Args:
        selector: question-selection strategy for each round.
        source: answer source (oracle or platform).
        latency: the latency model tDP plans against.
        rng: randomness source.
        max_rounds: safety bound on re-planning iterations (a correct
            selector terminates long before this).
    """

    def __init__(
        self,
        selector: QuestionSelector,
        source: AnswerSource,
        latency: LatencyFunction,
        rng: np.random.Generator,
        max_rounds: int = 10_000,
    ) -> None:
        if max_rounds < 1:
            raise InvalidParameterError(f"max_rounds must be >= 1: {max_rounds}")
        self.selector = selector
        self.source = source
        self.latency = latency
        self._rng = rng
        self.max_rounds = max_rounds

    def run(self, truth: GroundTruth, budget: int) -> MaxRunResult:
        """Find the MAX of *truth*'s collection within *budget* questions.

        Unlike :class:`repro.engine.max_engine.MaxEngine` there is no
        precomputed allocation: each round's budget is the first round of a
        fresh tDP plan for the current state.
        """
        n_elements = truth.n_elements
        if budget < n_elements - 1:
            raise InvalidParameterError(
                f"budget {budget} < c0 - 1 = {n_elements - 1} (Theorem 1)"
            )
        evidence = AnswerGraph(range(n_elements))
        candidates: Tuple[Element, ...] = tuple(range(n_elements))
        remaining = budget
        records: List[RoundRecord] = []
        total_latency = 0.0
        total_questions = 0
        for round_index in range(self.max_rounds):
            if len(candidates) <= 1:
                break
            plan = solve_min_latency(len(candidates), remaining, self.latency)
            round_budget = plan.questions_for_first_round()
            context = SelectionContext(
                budget=round_budget,
                candidates=candidates,
                evidence=evidence,
                round_index=round_index,
                # The current plan's horizon; selectors that split rounds
                # into phases (CT25) see a consistent total.
                total_rounds=max(plan.rounds, round_index + 1),
                rng=self._rng,
            )
            questions = self.selector.select(context)
            if not questions:
                break  # nothing askable: accept the current candidates
            answers, latency = self.source.resolve(questions)
            evidence.record_all(answers)
            next_candidates = tuple(sorted(evidence.remaining_candidates()))
            records.append(
                RoundRecord(
                    round_index=round_index,
                    budget=round_budget,
                    candidates_before=len(candidates),
                    questions_posted=len(questions),
                    latency=latency,
                    candidates_after=len(next_candidates),
                )
            )
            total_latency += latency
            total_questions += len(questions)
            remaining -= len(questions)
            candidates = next_candidates
            if remaining < len(candidates) - 1:
                break  # cannot guarantee further progress (Theorem 1)
        singleton = len(candidates) == 1
        if singleton:
            winner = candidates[0]
        else:
            scores = score_candidates(evidence)
            winner = max(scores, key=lambda element: (scores[element], -element))
        return MaxRunResult(
            winner=winner,
            true_max=truth.max_element,
            singleton_termination=singleton,
            total_latency=total_latency,
            total_questions=total_questions,
            records=tuple(records),
            allocation=None,
        )
