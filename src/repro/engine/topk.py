"""Top-k retrieval by repeated MAX phases with evidence reuse.

The paper's conclusion suggests the tDP approach "can be adapted to other
scenarios"; top-k (Davidson et al. [7] in the paper's related work) is the
most natural one.  This module finds the k best elements by peeling MAX
winners one at a time, with two ingredients that make it much cheaper than
k independent MAX runs:

* **evidence reuse** — answers never expire.  After the MAX is removed,
  the phase-2 candidates are exactly the elements whose every recorded
  loss was against already-found elements; for a tournament-selected
  phase 1 this is just the runners-up of the winner's tournaments.
* **adaptive allocation** — each phase re-plans with tDP from the actual
  (candidates, remaining budget) state, so budget a phase did not need
  flows into the next one.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Set, Tuple

import numpy as np

from repro.core.latency import LatencyFunction
from repro.core.questions import min_feasible_budget
from repro.core.tdp import solve_min_latency
from repro.crowd.ground_truth import GroundTruth
from repro.engine.max_engine import AnswerSource
from repro.engine.results import RoundRecord
from repro.errors import InvalidParameterError
from repro.graphs.answer_graph import AnswerGraph
from repro.selection.base import QuestionSelector, SelectionContext
from repro.types import Element


@dataclass(frozen=True)
class TopKResult:
    """Outcome of a top-k run.

    Attributes:
        ranking: the identified elements, best first (length <= k; shorter
            only if the budget ran out mid-phase).
        true_ranking: the actual top-k under the hidden order.
        total_latency: seconds across all phases.
        total_questions: distinct questions posted across all phases.
        phase_records: per-phase, per-round execution trace.
    """

    ranking: Tuple[Element, ...]
    true_ranking: Tuple[Element, ...]
    total_latency: float
    total_questions: int
    phase_records: Tuple[Tuple[RoundRecord, ...], ...]

    @property
    def correct(self) -> bool:
        """Whether the full returned ranking matches the true top-k."""
        return self.ranking == self.true_ranking


def minimum_topk_budget(n_elements: int, k: int) -> int:
    """Lower bound on the budget for top-k (generalizing Theorem 1).

    Every element outside the top-k must lose at least once, and the top-k
    must be mutually ordered, which needs at least ``k - 1`` further
    comparisons: ``(n - k) + (k - 1) = n - 1`` ... but each peel phase must
    also re-certify a fresh winner, so the safe bound used here is the sum
    of per-phase Theorem 1 minima for the worst case (no evidence reuse):
    phase ``j`` can face up to ``n - j`` candidates.  Evidence reuse makes
    real runs far cheaper; the bound is only a feasibility guard.
    """
    if n_elements < 1:
        raise InvalidParameterError(f"n_elements must be >= 1: {n_elements}")
    if not 1 <= k <= n_elements:
        raise InvalidParameterError(
            f"k must be in [1, n_elements={n_elements}], got {k}"
        )
    return n_elements - 1 + (k - 1)


class TopKEngine:
    """Find the k best elements via successive adaptive MAX phases."""

    def __init__(
        self,
        selector: QuestionSelector,
        source: AnswerSource,
        latency: LatencyFunction,
        rng: np.random.Generator,
    ) -> None:
        self.selector = selector
        self.source = source
        self.latency = latency
        self._rng = rng

    def run(self, truth: GroundTruth, k: int, budget: int) -> TopKResult:
        """Identify the top *k* of *truth*'s collection within *budget*.

        Each phase runs the MAX operation over the current candidates with
        per-round tDP re-planning; the phase winner joins the ranking and
        the next phase starts from the evidence accumulated so far.
        """
        n_elements = truth.n_elements
        if budget < minimum_topk_budget(n_elements, k):
            raise InvalidParameterError(
                f"budget {budget} below the top-{k} minimum of "
                f"{minimum_topk_budget(n_elements, k)} for {n_elements} "
                f"elements"
            )
        evidence = AnswerGraph(range(n_elements))
        found: List[Element] = []
        remaining_budget = budget
        total_latency = 0.0
        total_questions = 0
        phase_records: List[Tuple[RoundRecord, ...]] = []
        for _ in range(k):
            candidates = _phase_candidates(evidence, set(found))
            records, latency_spent, questions_spent, winner = self._max_phase(
                evidence, candidates, remaining_budget
            )
            total_latency += latency_spent
            total_questions += questions_spent
            remaining_budget -= questions_spent
            phase_records.append(records)
            if winner is None:
                break  # budget exhausted before the phase could finish
            found.append(winner)
        true_ranking = tuple(
            sorted(range(n_elements), key=truth.rank)[: len(found)]
        )
        return TopKResult(
            ranking=tuple(found),
            true_ranking=true_ranking,
            total_latency=total_latency,
            total_questions=total_questions,
            phase_records=tuple(phase_records),
        )

    def _max_phase(
        self,
        evidence: AnswerGraph,
        candidates: Tuple[Element, ...],
        budget: int,
    ):
        """One adaptive MAX over *candidates*; returns (records, latency,
        questions, winner-or-None)."""
        records: List[RoundRecord] = []
        latency_spent = 0.0
        questions_spent = 0
        round_index = 0
        while len(candidates) > 1:
            if budget - questions_spent < min_feasible_budget(len(candidates)):
                return tuple(records), latency_spent, questions_spent, None
            plan = solve_min_latency(
                len(candidates), budget - questions_spent, self.latency
            )
            context = SelectionContext(
                budget=plan.questions_for_first_round(),
                candidates=candidates,
                evidence=evidence,
                round_index=round_index,
                total_rounds=max(plan.rounds, round_index + 1),
                rng=self._rng,
            )
            questions = self.selector.select(context)
            if not questions:
                return tuple(records), latency_spent, questions_spent, None
            answers, round_latency = self.source.resolve(questions)
            evidence.record_all(answers)
            # Survivors: candidates that did not lose to another candidate.
            survivors = _surviving_candidates(evidence, candidates)
            records.append(
                RoundRecord(
                    round_index=round_index,
                    budget=context.budget,
                    candidates_before=len(candidates),
                    questions_posted=len(questions),
                    latency=round_latency,
                    candidates_after=len(survivors),
                )
            )
            latency_spent += round_latency
            questions_spent += len(questions)
            candidates = survivors
            round_index += 1
        winner = candidates[0] if candidates else None
        return tuple(records), latency_spent, questions_spent, winner


def _phase_candidates(
    evidence: AnswerGraph, found: Set[Element]
) -> Tuple[Element, ...]:
    """Elements whose every recorded loss was against already-found ones."""
    return tuple(
        sorted(
            element
            for element in evidence.elements
            if element not in found
            and evidence.winners_over(element) <= found
        )
    )


def _surviving_candidates(
    evidence: AnswerGraph, candidates: Tuple[Element, ...]
) -> Tuple[Element, ...]:
    """Candidates that have not lost to any other current candidate."""
    candidate_set = set(candidates)
    return tuple(
        element
        for element in candidates
        if not (evidence.winners_over(element) & candidate_set)
    )
