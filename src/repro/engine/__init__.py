"""The crowdsourced MAX operator engine and simulation helpers."""

from repro.engine.adaptive import AdaptiveMaxEngine
from repro.engine.adversarial import AdversarialMaxEngine, greedy_independent_set
from repro.engine.max_engine import (
    AnswerSource,
    MaxEngine,
    OracleAnswerSource,
    PlatformAnswerSource,
)
from repro.engine.results import MaxRunResult, RoundRecord
from repro.engine.session import MaxSession, SessionStateError
from repro.engine.simulation import AggregateStats, aggregate, run_many, run_once
from repro.engine.topk import TopKEngine, TopKResult, minimum_topk_budget
from repro.engine.validation import (
    ContractViolation,
    validate_run,
    validate_selection,
)

__all__ = [
    "MaxEngine",
    "AdaptiveMaxEngine",
    "AdversarialMaxEngine",
    "greedy_independent_set",
    "AnswerSource",
    "OracleAnswerSource",
    "PlatformAnswerSource",
    "MaxRunResult",
    "RoundRecord",
    "AggregateStats",
    "aggregate",
    "run_many",
    "run_once",
    "ContractViolation",
    "validate_run",
    "validate_selection",
    "TopKEngine",
    "TopKResult",
    "minimum_topk_budget",
    "MaxSession",
    "SessionStateError",
]
