"""High-level helpers for repeated simulation runs.

The experiments of Sections 6.3-6.6 run every (allocator, selector)
combination 100 times under the estimated latency function and report the
mean latency and singleton-termination rate; these helpers implement that
loop once for all of them.
"""

from __future__ import annotations

import logging
import math
from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.core.allocation import Allocation, BudgetAllocator
from repro.core.latency import LatencyFunction
from repro.crowd.error_models import ErrorModel
from repro.crowd.faults import FaultProfile, FaultyPlatform, RetryPolicy
from repro.crowd.ground_truth import GroundTruth
from repro.crowd.platform import Platform, SimulatedPlatform
from repro.crowd.rwl import ReliableWorkerLayer
from repro.crowd.workers import WorkerPoolConfig
from repro.engine.max_engine import (
    MaxEngine,
    OracleAnswerSource,
    PlatformAnswerSource,
)
from repro.engine.results import MaxRunResult
from repro.errors import InvalidParameterError
from repro.obs.tracer import timed
from repro.selection.base import QuestionSelector

logger = logging.getLogger(__name__)


@dataclass(frozen=True)
class AggregateStats:
    """Summary of a batch of MAX runs under one configuration.

    Attributes:
        n_runs: how many runs were aggregated.
        mean_latency: average total latency (seconds).
        std_latency: sample standard deviation of the latency.
        singleton_rate: fraction of runs that ended with one candidate.
        accuracy: fraction of runs whose declared winner was the true MAX.
        mean_questions: average distinct questions posted.
        mean_rounds: average rounds actually executed.
    """

    n_runs: int
    mean_latency: float
    std_latency: float
    singleton_rate: float
    accuracy: float
    mean_questions: float
    mean_rounds: float

    def latency_confidence_interval(
        self, z: float = 1.96
    ) -> "tuple[float, float]":
        """Normal-approximation CI for the mean latency (default 95%).

        With a single run the interval degenerates to the point estimate.
        """
        if z < 0:
            raise InvalidParameterError(f"z must be >= 0, got {z}")
        if self.n_runs <= 1 or math.isnan(self.std_latency):
            return (self.mean_latency, self.mean_latency)
        half_width = z * self.std_latency / math.sqrt(self.n_runs)
        return (self.mean_latency - half_width, self.mean_latency + half_width)

    @classmethod
    def from_results(cls, results: Sequence[MaxRunResult]) -> "AggregateStats":
        if not results:
            raise InvalidParameterError("cannot aggregate zero runs")
        latencies = [r.total_latency for r in results]
        mean = sum(latencies) / len(latencies)
        variance = (
            sum((x - mean) ** 2 for x in latencies) / (len(latencies) - 1)
            if len(latencies) > 1
            else 0.0
        )
        return cls(
            n_runs=len(results),
            mean_latency=mean,
            std_latency=math.sqrt(variance),
            singleton_rate=sum(r.singleton_termination for r in results)
            / len(results),
            accuracy=sum(r.correct for r in results) / len(results),
            mean_questions=sum(r.total_questions for r in results) / len(results),
            mean_rounds=sum(r.rounds_run for r in results) / len(results),
        )


def run_once(
    n_elements: int,
    budget: int,
    allocator: BudgetAllocator,
    selector: QuestionSelector,
    latency: LatencyFunction,
    rng: np.random.Generator,
    allocation: Optional[Allocation] = None,
) -> MaxRunResult:
    """One deterministic-latency MAX run with a fresh random ground truth.

    Args:
        allocation: pass a precomputed allocation to skip re-running the
            allocator (useful when sweeping many runs of one configuration).
    """
    if allocation is None:
        allocation = allocator.allocate(n_elements, budget, latency)
    truth = GroundTruth.random(n_elements, rng)
    engine = MaxEngine(
        selector=selector,
        source=OracleAnswerSource(truth, latency),
        rng=rng,
    )
    return engine.run(truth, allocation)


def run_many(
    n_elements: int,
    budget: int,
    allocator: BudgetAllocator,
    selector: QuestionSelector,
    latency: LatencyFunction,
    n_runs: int,
    seed: int,
) -> List[MaxRunResult]:
    """Repeat :func:`run_once` ``n_runs`` times with derived seeds.

    The allocation is computed once (it is deterministic given the inputs)
    and reused across runs; the ground truth and selector randomness differ
    per run.
    """
    if n_runs < 1:
        raise InvalidParameterError(f"n_runs must be >= 1: {n_runs}")
    allocation = allocator.allocate(n_elements, budget, latency)
    logger.debug(
        "run_many: %d runs of %s + %s, c0=%d, b=%d, allocation %s",
        n_runs,
        allocator.name,
        selector.name,
        n_elements,
        budget,
        allocation.round_budgets,
    )
    results = []
    with timed("simulation.run_many"):
        for run_index in range(n_runs):
            rng = np.random.default_rng((seed, run_index))
            results.append(
                run_once(
                    n_elements,
                    budget,
                    allocator,
                    selector,
                    latency,
                    rng,
                    allocation=allocation,
                )
            )
    return results


def aggregate(
    n_elements: int,
    budget: int,
    allocator: BudgetAllocator,
    selector: QuestionSelector,
    latency: LatencyFunction,
    n_runs: int,
    seed: int,
) -> AggregateStats:
    """Run a configuration ``n_runs`` times and summarize it."""
    return AggregateStats.from_results(
        run_many(n_elements, budget, allocator, selector, latency, n_runs, seed)
    )


def run_once_on_platform(
    n_elements: int,
    budget: int,
    allocator: BudgetAllocator,
    selector: QuestionSelector,
    latency: LatencyFunction,
    seed: int,
    *,
    repetition: int = 1,
    error_model: Optional[ErrorModel] = None,
    worker_config: Optional[WorkerPoolConfig] = None,
    fault_profile: Optional[FaultProfile] = None,
    retry_policy: Optional[RetryPolicy] = None,
    adaptive: bool = False,
) -> MaxRunResult:
    """One MAX run with *measured* latency on the simulated platform.

    This is the Section 6.2 mode — questions go through the Reliable
    Worker Layer to a :class:`~repro.crowd.platform.SimulatedPlatform` —
    extended with the robustness stack of ``docs/robustness.md``:

    * *fault_profile* (when given, including the zero profile) wraps the
      platform in a :class:`~repro.crowd.faults.FaultyPlatform` seeded
      from an independent stream, so a zero profile is bit-identical to
      the unwrapped platform;
    * *retry_policy* lets the RWL re-post unanswered questions;
    * the engine degrades gracefully on rounds whose answers could not be
      fully recovered — the static engine re-plans the leftover budget
      against *latency*, the adaptive engine re-plans every round anyway.

    The run is fully determined by ``seed`` (platform, workers, faults
    and selection randomness all derive from it).
    """
    rng = np.random.default_rng((seed, 0))
    truth = GroundTruth.random(n_elements, rng)
    platform: Platform = SimulatedPlatform(
        truth, rng, error_model=error_model, config=worker_config
    )
    if fault_profile is not None:
        platform = FaultyPlatform(
            platform, fault_profile, np.random.default_rng((seed, 1))
        )
    rwl = ReliableWorkerLayer(
        platform, rng, repetition=repetition, retry_policy=retry_policy
    )
    source = PlatformAnswerSource(rwl)
    if adaptive:
        from repro.engine.adaptive import AdaptiveMaxEngine

        return AdaptiveMaxEngine(selector, source, latency, rng).run(
            truth, budget
        )
    allocation = allocator.allocate(n_elements, budget, latency)
    lossy = fault_profile is not None and not fault_profile.is_zero
    engine = MaxEngine(
        selector,
        source,
        rng,
        replan_latency=latency if lossy else None,
    )
    return engine.run(truth, allocation)


def run_many_on_platform(
    n_elements: int,
    budget: int,
    allocator: BudgetAllocator,
    selector: QuestionSelector,
    latency: LatencyFunction,
    n_runs: int,
    seed: int,
    **platform_kwargs,
) -> List[MaxRunResult]:
    """Repeat :func:`run_once_on_platform` with per-run derived seeds.

    Keyword arguments are forwarded to :func:`run_once_on_platform`
    (repetition, fault profile, retry policy, ...).
    """
    if n_runs < 1:
        raise InvalidParameterError(f"n_runs must be >= 1: {n_runs}")
    results = []
    with timed("simulation.run_many_on_platform"):
        for run_index in range(n_runs):
            results.append(
                run_once_on_platform(
                    n_elements,
                    budget,
                    allocator,
                    selector,
                    latency,
                    seed=int(
                        np.random.SeedSequence(
                            (seed, run_index)
                        ).generate_state(1)[0]
                    ),
                    **platform_kwargs,
                )
            )
    return results
