"""Invariant checks for MAX runs and custom question selectors.

The library accepts user-provided :class:`QuestionSelector` implementations
(the paper's framework explicitly decouples budget allocation from question
selection), so these helpers let users — and the test suite — verify that
a selector honours its contract and that a finished run is internally
consistent.
"""

from __future__ import annotations

from typing import Sequence

from repro.engine.results import MaxRunResult
from repro.errors import ReproError
from repro.selection.base import SelectionContext
from repro.types import Question


class ContractViolation(ReproError):
    """A selector or run trace broke a documented invariant."""


def validate_selection(
    ctx: SelectionContext, questions: Sequence[Question]
) -> None:
    """Check one round's selector output against the selector contract.

    Raises:
        ContractViolation: listing the first violated rule.
    """
    if len(questions) > ctx.budget:
        raise ContractViolation(
            f"selected {len(questions)} questions for a budget of {ctx.budget}"
        )
    seen = set()
    candidate_set = set(ctx.candidates)
    for question in questions:
        a, b = question
        if a >= b:
            raise ContractViolation(
                f"question {question} is not in canonical (min, max) form"
            )
        if a not in candidate_set or b not in candidate_set:
            raise ContractViolation(
                f"question {question} involves non-candidates"
            )
        if question in seen:
            raise ContractViolation(f"duplicate question {question}")
        seen.add(question)
    if len(ctx.candidates) < 2 and questions:
        raise ContractViolation(
            "questions selected although fewer than two candidates remain"
        )


def validate_run(
    result: MaxRunResult, n_elements: int, budget: int
) -> None:
    """Check a finished run's trace for internal consistency.

    Verifies the round chain (candidate counts connect, never increase,
    each round posts within its budget), the budget constraint, and the
    singleton flag.

    Raises:
        ContractViolation: on the first inconsistency found.
    """
    previous_after = n_elements
    posted_total = 0
    for record in result.records:
        if record.candidates_before != previous_after:
            raise ContractViolation(
                f"round {record.round_index} starts with "
                f"{record.candidates_before} candidates but the previous "
                f"round left {previous_after}"
            )
        if record.candidates_after > record.candidates_before:
            raise ContractViolation(
                f"round {record.round_index} increased the candidate count"
            )
        if record.candidates_after < 1:
            raise ContractViolation(
                f"round {record.round_index} left no candidates"
            )
        if record.questions_posted > record.budget:
            raise ContractViolation(
                f"round {record.round_index} posted {record.questions_posted} "
                f"questions over its budget of {record.budget}"
            )
        if record.latency < 0:
            raise ContractViolation(
                f"round {record.round_index} has negative latency"
            )
        posted_total += record.questions_posted
        previous_after = record.candidates_after
    if posted_total != result.total_questions:
        raise ContractViolation(
            f"per-round questions sum to {posted_total} but the run reports "
            f"{result.total_questions}"
        )
    if result.total_questions > budget:
        raise ContractViolation(
            f"run posted {result.total_questions} questions over the "
            f"budget of {budget}"
        )
    if result.singleton_termination and previous_after != 1:
        raise ContractViolation(
            "run flagged singleton termination but more than one candidate "
            "remained"
        )
    if not result.singleton_termination and previous_after == 1:
        raise ContractViolation(
            "run ended with a single candidate but was not flagged singleton"
        )
