"""Result records produced by the MAX engine."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from repro.core.allocation import Allocation
from repro.types import Element


@dataclass(frozen=True)
class RoundRecord:
    """What happened in one executed round.

    Attributes:
        round_index: zero-based round number.
        budget: questions the allocation granted the round.
        candidates_before: candidate count when the round started.
        questions_posted: distinct questions actually posted (may be fewer
            than the budget when the candidate pair space is exhausted).
        latency: seconds the round took.
        candidates_after: candidate count after the answers came back.
    """

    round_index: int
    budget: int
    candidates_before: int
    questions_posted: int
    latency: float
    candidates_after: int


@dataclass(frozen=True)
class MaxRunResult:
    """Complete outcome of one crowdsourced MAX run.

    Attributes:
        winner: the element the operator declared the MAX.
        true_max: the actual MAX under the hidden order.
        singleton_termination: whether exactly one candidate remained (the
            paper's accuracy criterion for the error-free setting).
        total_latency: seconds from first post to the final answer.
        total_questions: distinct questions posted over all rounds.
        records: per-round execution trace.
        allocation: the budget allocation that drove the run.
    """

    winner: Element
    true_max: Element
    singleton_termination: bool
    total_latency: float
    total_questions: int
    records: Tuple[RoundRecord, ...]
    allocation: Optional[Allocation] = None

    @property
    def correct(self) -> bool:
        """Whether the declared winner is the true MAX."""
        return self.winner == self.true_max

    @property
    def rounds_run(self) -> int:
        """Rounds that actually posted questions (early stop skips rounds)."""
        return len(self.records)

    def summary(self) -> str:
        """One-line human-readable digest."""
        status = "singleton" if self.singleton_termination else "ambiguous"
        verdict = "correct" if self.correct else "WRONG"
        return (
            f"MAX={self.winner} ({verdict}, {status}) in "
            f"{self.rounds_run} rounds, {self.total_questions} questions, "
            f"{self.total_latency:.1f}s"
        )
