"""The crowdsourced MAX operator.

:class:`MaxEngine` ties the pieces together the way Section 1 describes the
operator: it receives a budget allocation (the vector of per-round question
counts), lets a question-selection algorithm pick each round's questions,
sends them to an answer source, folds the answers into the evidence DAG, and
stops as soon as a single candidate remains (or the allocation is
exhausted).

Two answer sources are provided:

* :class:`OracleAnswerSource` — answers come straight from the ground truth
  and the round latency is *computed* from a latency function.  This is the
  mode of Sections 6.3-6.6 ("instead of actually posting the questions on
  MTurk, we compute the time it would take").
* :class:`PlatformAnswerSource` — questions go through the Reliable Worker
  Layer to the simulated platform, and latency is *measured*.  This is the
  mode of the real-time experiment (Section 6.2).
"""

from __future__ import annotations

import logging
from abc import ABC, abstractmethod
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.core.allocation import Allocation
from repro.core.latency import LatencyFunction
from repro.core.tdp import solve_min_latency
from repro.crowd.ground_truth import GroundTruth
from repro.crowd.rwl import ReliableWorkerLayer
from repro.engine.results import MaxRunResult, RoundRecord
from repro.errors import InvalidParameterError
from repro.graphs.answer_graph import AnswerGraph
from repro.obs.events import (
    AnswersReceived,
    CandidateSetShrunk,
    RoundPosted,
    RunFinished,
    RunStarted,
)
from repro.obs.metrics import get_registry
from repro.obs.spans import close_span, open_span, span_scope
from repro.obs.tracer import Tracer, current_tracer
from repro.selection.base import QuestionSelector, SelectionContext
from repro.selection.scoring import score_candidates
from repro.types import Answer, Element, Question

logger = logging.getLogger(__name__)


class AnswerSource(ABC):
    """Resolves one round's questions into answers plus the round latency."""

    @abstractmethod
    def resolve(
        self, questions: Sequence[Question]
    ) -> Tuple[List[Answer], float]:
        """Answer *questions*; return (answers, seconds the round took)."""


class OracleAnswerSource(AnswerSource):
    """Ground-truth answers with model-computed latency (error-free mode)."""

    def __init__(self, truth: GroundTruth, latency: LatencyFunction) -> None:
        self.truth = truth
        self.latency = latency

    def resolve(
        self, questions: Sequence[Question]
    ) -> Tuple[List[Answer], float]:
        answers = [self.truth.answer(a, b) for a, b in questions]
        return answers, self.latency(len(questions))


class PlatformAnswerSource(AnswerSource):
    """Answers via the Reliable Worker Layer; latency is simulated."""

    def __init__(self, rwl: ReliableWorkerLayer) -> None:
        self.rwl = rwl

    def resolve(
        self, questions: Sequence[Question]
    ) -> Tuple[List[Answer], float]:
        result = self.rwl.ask(questions)
        return list(result.answers), result.latency


class MaxEngine:
    """Runs the round-based MAX operation for one allocation.

    Args:
        selector: question-selection strategy for each round.
        source: answer source (oracle or platform).
        rng: randomness source.
        tracer: structured-event tracer; ``None`` falls back to the
            ambient tracer (:func:`repro.obs.current_tracer`), which is
            the no-op :data:`~repro.obs.NULL_TRACER` unless installed.
        replan_latency: graceful degradation under platform faults — when
            a round resolves fewer answers than it posted (a lossy answer
            source gave up on some questions), re-solve MinLatency for the
            actual surviving candidates and the leftover budget and replace
            the remaining round budgets with the fresh plan.  ``None``
            (the default) keeps the static allocation untouched, which is
            the paper's error-free behaviour.
    """

    def __init__(
        self,
        selector: QuestionSelector,
        source: AnswerSource,
        rng: np.random.Generator,
        tracer: Optional[Tracer] = None,
        replan_latency: Optional[LatencyFunction] = None,
    ) -> None:
        self.selector = selector
        self.source = source
        self._rng = rng
        self._tracer = tracer
        self.replan_latency = replan_latency

    def _resolve_tracer(self) -> Tracer:
        return self._tracer if self._tracer is not None else current_tracer()

    def run(self, truth: GroundTruth, allocation: Allocation) -> MaxRunResult:
        """Execute *allocation* against *truth* and return the full trace.

        Rounds stop early once a single candidate remains (the operator
        "stops asking questions if just a single element not having lost any
        comparison remains", Section 6.2).  If candidates remain after the
        final round, the highest-scoring one is declared the MAX — a
        non-singleton termination.
        """
        n_elements = truth.n_elements
        evidence = AnswerGraph(range(n_elements))
        candidates: Tuple[Element, ...] = tuple(range(n_elements))
        records: List[RoundRecord] = []
        total_latency = 0.0
        total_questions = 0
        tracer = self._resolve_tracer()
        registry = get_registry()
        registry.counter("engine.runs").inc()
        # Structural root-span id: the tracer's emission count at run
        # start distinguishes successive runs on one tracer and is
        # reproducible (identical runs emit identical event sequences).
        run_span = f"run{getattr(tracer, 'emitted', 0)}"
        if tracer.enabled:
            open_span(
                tracer,
                run_span,
                "run",
                start=0.0,
                detail=f"{type(self).__name__} c0={n_elements}",
            )
            tracer.emit(
                RunStarted(
                    n_elements=n_elements,
                    budget=allocation.total_questions,
                    rounds_planned=allocation.rounds,
                    engine=type(self).__name__,
                ),
                sim_time=0.0,
            )
        budgets = list(allocation.round_budgets)
        round_index = -1
        while round_index + 1 < len(budgets):
            round_index += 1
            budget = budgets[round_index]
            if len(candidates) <= 1:
                break
            context = SelectionContext(
                budget=budget,
                candidates=candidates,
                evidence=evidence,
                round_index=round_index,
                total_rounds=len(budgets),
                rng=self._rng,
            )
            questions = self.selector.select(context)
            if len(questions) > budget:
                raise InvalidParameterError(
                    f"selector {self.selector.name} returned {len(questions)} "
                    f"questions for a budget of {budget}"
                )
            if not questions:
                # Nothing to post; the round costs no latency.
                logger.debug(
                    "round %d: selector %s returned no questions for %d "
                    "candidates (budget %d); skipping the round",
                    round_index,
                    self.selector.name,
                    len(candidates),
                    budget,
                )
                continue
            round_span = f"{run_span}/r{round_index}"
            if tracer.enabled:
                open_span(
                    tracer,
                    round_span,
                    "round",
                    start=total_latency,
                    parent_id=run_span,
                    detail=f"{len(questions)} questions",
                )
                tracer.emit(
                    RoundPosted(
                        round_index=round_index,
                        budget=budget,
                        questions_posted=len(questions),
                        candidates_before=len(candidates),
                    ),
                    sim_time=total_latency,
                )
            with span_scope(round_span, base_time=total_latency):
                answers, latency = self.source.resolve(questions)
            evidence.record_all(answers)
            next_candidates = tuple(sorted(evidence.remaining_candidates()))
            if tracer.enabled:
                close_span(tracer, round_span, end=total_latency + latency)
                tracer.emit(
                    AnswersReceived(
                        round_index=round_index,
                        n_answers=len(answers),
                        latency=latency,
                    ),
                    sim_time=total_latency + latency,
                )
                tracer.emit(
                    CandidateSetShrunk(
                        round_index=round_index,
                        candidates_before=len(candidates),
                        candidates_after=len(next_candidates),
                    ),
                    sim_time=total_latency + latency,
                )
                tracer.advance_sim(latency)
            registry.counter("engine.rounds").inc()
            registry.counter("engine.questions_posted").inc(len(questions))
            registry.counter("engine.answers_resolved").inc(len(answers))
            registry.histogram("engine.candidates_after").observe(
                len(next_candidates)
            )
            logger.debug(
                "round %d: %d -> %d candidates, %d questions, %.1f s",
                round_index,
                len(candidates),
                len(next_candidates),
                len(questions),
                latency,
            )
            records.append(
                RoundRecord(
                    round_index=round_index,
                    budget=budget,
                    candidates_before=len(candidates),
                    questions_posted=len(questions),
                    latency=latency,
                    candidates_after=len(next_candidates),
                )
            )
            total_latency += latency
            total_questions += len(questions)
            candidates = next_candidates
            distinct_posted = len(dict.fromkeys(questions))
            if len(answers) < distinct_posted:
                # A lossy answer source gave up on some questions: the
                # candidate set shrank only as far as the surviving answers
                # allow.  Re-plan the rest of the budget for the actual
                # state instead of following the now-stale allocation.
                registry.counter("engine.degraded_rounds").inc()
                logger.warning(
                    "round %d degraded: %d of %d questions unanswered; "
                    "%d candidates survive",
                    round_index,
                    distinct_posted - len(answers),
                    distinct_posted,
                    len(candidates),
                )
                self._replan_remaining(budgets, round_index, len(candidates))
        singleton = len(candidates) == 1
        winner = candidates[0] if singleton else self._pick_winner(evidence)
        if not singleton:
            logger.debug(
                "non-singleton termination: %d candidates remain after %d "
                "rounds; declaring the highest-scoring one (%d)",
                len(candidates),
                len(records),
                winner,
            )
        if tracer.enabled:
            tracer.emit(
                RunFinished(
                    winner=int(winner),
                    rounds_run=len(records),
                    total_questions=total_questions,
                    total_latency=total_latency,
                    singleton=singleton,
                ),
                sim_time=total_latency,
            )
            close_span(tracer, run_span, end=total_latency)
        return MaxRunResult(
            winner=winner,
            true_max=truth.max_element,
            singleton_termination=singleton,
            total_latency=total_latency,
            total_questions=total_questions,
            records=tuple(records),
            allocation=allocation,
        )

    def _replan_remaining(
        self, budgets: List[int], round_index: int, n_candidates: int
    ) -> None:
        """Replace the budgets after *round_index* with a fresh tDP plan.

        No-op unless the engine was built with ``replan_latency``, the run
        is still undecided and the leftover budget can make progress
        (Theorem 1: at least ``candidates - 1`` questions).
        """
        if self.replan_latency is None or n_candidates <= 1:
            return
        leftover = sum(budgets[round_index + 1:])
        if leftover < n_candidates - 1:
            logger.warning(
                "cannot re-plan: leftover budget %d < %d (Theorem 1); "
                "keeping the stale allocation",
                leftover,
                n_candidates - 1,
            )
            return
        plan = solve_min_latency(n_candidates, leftover, self.replan_latency)
        replanned = Allocation.from_element_sequence(
            plan.sequence, "tDP (replanned)"
        )
        budgets[round_index + 1:] = list(replanned.round_budgets)
        get_registry().counter("engine.replans").inc()
        logger.info(
            "re-planned %d leftover questions over %d candidates into "
            "rounds %s",
            leftover,
            n_candidates,
            replanned.round_budgets,
        )

    def _pick_winner(self, evidence: AnswerGraph) -> Element:
        """Non-singleton fallback: highest Appendix B.2 score wins."""
        scores = score_candidates(evidence)
        # Deterministic tie-break on element id keeps runs reproducible.
        return max(scores, key=lambda element: (scores[element], -element))
