"""repro.chaos — crash-injection harness for the journaled scheduler.

Runs a workload, kills the scheduler at chosen tick boundaries, recovers
from the write-ahead journal and asserts the recovered report is
bit-identical to an uninterrupted run.  Exposed on the CLI as
``tdp-repro chaos``; the exhaustive every-boundary sweep backs the
``slow``-marked acceptance test.
"""

from repro.chaos.harness import (
    ChaosReport,
    ChaosScenario,
    CrashOutcome,
    available_scenarios,
    build_scheduler,
    describe_mismatch,
    run_chaos,
    run_with_crash,
    scenario_by_name,
    seeded_crash_points,
    total_steps,
    uninterrupted_report,
)

__all__ = [
    "ChaosScenario",
    "CrashOutcome",
    "ChaosReport",
    "available_scenarios",
    "build_scheduler",
    "uninterrupted_report",
    "total_steps",
    "describe_mismatch",
    "run_with_crash",
    "scenario_by_name",
    "seeded_crash_points",
    "run_chaos",
]
