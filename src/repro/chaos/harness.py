"""Crash-injection harness: make the recovery guarantee executable.

The journal's contract — *a run killed at any tick boundary and recovered
produces a bit-identical report* — is exactly the kind of claim that rots
as a comment.  This harness turns it into a property that runs in CI:

1. run the scenario once, uninterrupted and unjournaled → baseline report;
2. for each crash point ``k``: run a journaled scheduler for ``k`` steps,
   abandon it (the "kill"), :func:`~repro.service.journal.recover_scheduler`
   from the journal, drive the recovered scheduler to completion;
3. assert the recovered report ``==`` the baseline (dataclass equality —
   every field of every per-query result).

Crash points can be explicit (``crash_points``), seeded-random
(``n_crashes``) or exhaustive (``sweep=True``, one kill per step boundary
— the ``slow``-marked acceptance test).
"""

from __future__ import annotations

import tempfile
from dataclasses import dataclass, field
from pathlib import Path
from typing import List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.core.latency import LatencyFunction, mturk_car_latency
from repro.crowd.breaker import CircuitBreakerConfig
from repro.crowd.faults import RetryPolicy, fault_profile_by_name
from repro.crowd.multibackend import BackendSpec, backend_preset_by_name
from repro.errors import InvalidParameterError
from repro.service.journal import SchedulerJournal, recover_scheduler
from repro.service.report import ServiceReport
from repro.service.scheduler import MaxScheduler, ServiceConfig
from repro.service.workload import generate_workload, workload_by_name


@dataclass(frozen=True)
class ChaosScenario:
    """One reproducible workload-under-faults setup to crash-test.

    Attributes:
        workload: named workload preset (see :mod:`repro.service.workload`).
        seed: master seed for workload generation and the scheduler.
        faults: named fault profile, or ``None`` for a clean platform.
        retry_policy: RWL retry policy (``None`` disables retries).
        n_queries: override the preset's query count (small = fast CI).
        config: scheduler tunables (``None`` = defaults).
        breaker: circuit-breaker configuration, if any.
        latency: planning latency model (``None`` = the paper's MTurk fit).
        snapshot_interval: journal snapshot cadence in ticks.
        backends: federate the run across this fleet of
            :class:`~repro.crowd.multibackend.BackendSpec` s instead of one
            shared platform (mutually exclusive with ``faults``/``breaker``;
            per-backend fault profiles and breakers live in the specs).
    """

    workload: str = "smoke"
    seed: int = 0
    faults: Optional[str] = None
    retry_policy: Optional[RetryPolicy] = None
    n_queries: Optional[int] = None
    config: Optional[ServiceConfig] = None
    breaker: Optional[CircuitBreakerConfig] = None
    latency: Optional[LatencyFunction] = None
    snapshot_interval: int = 1
    backends: Optional[Tuple[BackendSpec, ...]] = None

    def __post_init__(self) -> None:
        if self.backends is not None and self.faults is not None:
            raise InvalidParameterError(
                "faults and backends are mutually exclusive; attach fault "
                "profiles to individual BackendSpecs instead"
            )
        if self.backends is not None and self.breaker is not None:
            raise InvalidParameterError(
                "breaker and backends are mutually exclusive; attach "
                "breakers to individual BackendSpecs instead"
            )


@dataclass(frozen=True)
class CrashOutcome:
    """Result of one kill/recover/compare cycle.

    Attributes:
        crash_after: scheduler steps executed before the kill.
        crashed_at_tick: the victim's tick counter at the kill.
        recovered_at_tick: the tick the journal restored the state to.
        equivalent: recovered report == uninterrupted baseline.
        mismatch: human-readable first difference (``None`` when equal).
    """

    crash_after: int
    crashed_at_tick: int
    recovered_at_tick: int
    equivalent: bool
    mismatch: Optional[str] = None


@dataclass(frozen=True)
class ChaosReport:
    """Aggregated outcome of a chaos run against one scenario."""

    scenario: ChaosScenario
    baseline: ServiceReport
    outcomes: Tuple[CrashOutcome, ...] = field(default_factory=tuple)

    @property
    def all_equivalent(self) -> bool:
        """Whether every crash point recovered to a bit-identical report."""
        return all(outcome.equivalent for outcome in self.outcomes)

    @property
    def n_failures(self) -> int:
        return sum(1 for outcome in self.outcomes if not outcome.equivalent)

    def render(self) -> str:
        """Human-readable summary for the CLI."""
        backends = (
            ",".join(spec.name for spec in self.scenario.backends)
            if self.scenario.backends is not None
            else "none"
        )
        lines = [
            f"chaos: workload={self.scenario.workload} "
            f"seed={self.scenario.seed} "
            f"faults={self.scenario.faults or 'none'} "
            f"backends={backends} "
            f"snapshot_interval={self.scenario.snapshot_interval}",
            f"baseline: {self.baseline.ticks} ticks, "
            f"makespan {self.baseline.makespan:.1f} s, "
            f"{len(self.baseline.results)} queries",
            f"crash points: {len(self.outcomes)}",
        ]
        for outcome in self.outcomes:
            status = "OK " if outcome.equivalent else "FAIL"
            line = (
                f"  [{status}] kill after step {outcome.crash_after:>4} "
                f"(tick {outcome.crashed_at_tick}) -> recovered at tick "
                f"{outcome.recovered_at_tick}"
            )
            if outcome.mismatch:
                line += f": {outcome.mismatch}"
            lines.append(line)
        verdict = (
            "all recoveries bit-identical"
            if self.all_equivalent
            else f"{self.n_failures} of {len(self.outcomes)} recoveries diverged"
        )
        lines.append(verdict)
        return "\n".join(lines)


# ----------------------------------------------------------------------
# Scenario plumbing
# ----------------------------------------------------------------------
def build_scheduler(
    scenario: ChaosScenario, journal: Optional[SchedulerJournal] = None
) -> MaxScheduler:
    """Construct the scenario's scheduler (optionally journaled)."""
    specs = generate_workload(
        workload_by_name(scenario.workload),
        seed=scenario.seed,
        n_queries=scenario.n_queries,
    )
    latency = (
        scenario.latency if scenario.latency is not None else mturk_car_latency()
    )
    return MaxScheduler(
        specs,
        latency,
        seed=scenario.seed,
        config=scenario.config,
        fault_profile=(
            fault_profile_by_name(scenario.faults)
            if scenario.faults is not None
            else None
        ),
        retry_policy=scenario.retry_policy,
        breaker_config=scenario.breaker,
        journal=journal,
        backends=(
            list(scenario.backends) if scenario.backends is not None else None
        ),
    )


# ----------------------------------------------------------------------
# Named scenarios (``tdp-repro chaos --scenario NAME``)
# ----------------------------------------------------------------------
def _multibackend_outage() -> ChaosScenario:
    """A three-backend fleet whose default route goes dark mid-run.

    The ``outage-trio`` preset arms every backend's circuit breaker and
    gives the latency-preferred ``balanced`` backend a sustained outage
    window: crash points land before, during and after the failover, so
    recovery must reproduce the router's reroute decisions exactly.
    """
    return ChaosScenario(
        workload="steady",
        seed=3,
        backends=tuple(backend_preset_by_name("outage-trio")),
    )


def _deadline_storm() -> ChaosScenario:
    """A deadline-carrying burst on an outage-prone fleet, fully armed.

    Every robustness feature is on at once: enforced per-query deadlines
    (tight enough that replanning, proactive degradation and late
    expiries all occur), hedged posting against predicted-slow backends,
    and the brownout controller shedding low-priority admissions under
    the queue-wait spike the outage causes.  Crash recovery must replay
    every one of those decisions — no admitted query may lose its
    explicit terminal state.
    """
    from repro.crowd.multibackend import HedgeConfig
    from repro.service.deadline import BrownoutConfig

    return ChaosScenario(
        workload="steady",
        seed=7,
        n_queries=36,
        backends=tuple(backend_preset_by_name("outage-trio")),
        config=ServiceConfig(
            policy="priority",
            # uHF plans three uniform rounds, so deadline replanning has
            # future rounds to merge (tDP's two-round optima leave none).
            allocator="uHF",
            max_active_queries=6,
            max_queue_depth=10,
            # least-loaded keeps slack on the fast backend, which is what
            # makes it a viable hedge mirror when `cheap` predicts slow.
            routing="least-loaded",
            default_deadline=1800.0,
            hedge=HedgeConfig(min_samples=4, window=32, factor=0.8),
            brownout=BrownoutConfig(queue_wait_threshold=1000.0),
        ),
    )


def _alert_storm() -> ChaosScenario:
    """The deadline storm with the SLO engine armed and twitchy.

    Rule windows and thresholds are tightened so alerts both fire *and*
    resolve within the run: the deadline burn-rate alert trips while the
    outage wrecks attainment, the brownout/hedge-waste thresholds trip
    with their drivers, and the thresholds clear as the queue drains.
    Crash recovery must replay the exact AlertFired/AlertResolved
    sequence — the journal's alert records are the assertion surface.
    """
    from repro.crowd.multibackend import HedgeConfig
    from repro.obs.slo import (
        BurnRateRule,
        SLOConfig,
        SLOTarget,
        ThresholdRule,
    )
    from repro.service.deadline import BrownoutConfig

    return ChaosScenario(
        workload="steady",
        seed=7,
        n_queries=36,
        backends=tuple(backend_preset_by_name("outage-trio")),
        config=ServiceConfig(
            policy="priority",
            allocator="uHF",
            max_active_queries=6,
            max_queue_depth=10,
            routing="least-loaded",
            default_deadline=1800.0,
            hedge=HedgeConfig(min_samples=4, window=32, factor=0.8),
            brownout=BrownoutConfig(queue_wait_threshold=1000.0),
            slo=SLOConfig(
                targets=(
                    SLOTarget(name="deadline-attainment",
                              objective="deadline",
                              target=0.90, window=48),
                    SLOTarget(name="query-success", objective="queries",
                              target=0.80, window=48),
                ),
                burn_rates=(
                    BurnRateRule(name="deadline-burn",
                                 slo="deadline-attainment",
                                 fast_window=4, slow_window=12,
                                 burn_threshold=1.0,
                                 severity="critical"),
                ),
                thresholds=(
                    ThresholdRule(name="brownout-active",
                                  signal="brownout_level",
                                  threshold=1.0, severity="warning"),
                    ThresholdRule(name="queue-wait-high",
                                  signal="queue_wait_p95",
                                  threshold=1500.0, severity="warning"),
                    ThresholdRule(name="hedge-waste",
                                  signal="hedge_waste",
                                  threshold=3.0, severity="warning"),
                ),
                ring=64,
            ),
        ),
    )


_SCENARIOS = {
    "multibackend-outage": _multibackend_outage,
    "deadline-storm": _deadline_storm,
    "alert-storm": _alert_storm,
}


def available_scenarios() -> List[str]:
    """Names accepted by :func:`scenario_by_name` (``--scenario``)."""
    return sorted(_SCENARIOS)


def scenario_by_name(name: str) -> ChaosScenario:
    """Instantiate a named chaos scenario.

    Raises:
        InvalidParameterError: for unknown names (the message lists the
            available ones).
    """
    try:
        factory = _SCENARIOS[name]
    except KeyError:
        raise InvalidParameterError(
            f"unknown chaos scenario {name!r}; available: "
            f"{', '.join(available_scenarios())}"
        ) from None
    return factory()


def uninterrupted_report(scenario: ChaosScenario) -> ServiceReport:
    """The baseline: the scenario run to completion without a journal."""
    return build_scheduler(scenario).run()


def total_steps(scenario: ChaosScenario) -> int:
    """How many scheduler steps the scenario takes to drain."""
    scheduler = build_scheduler(scenario)
    steps = 0
    while scheduler.step():
        steps += 1
    return steps


def describe_mismatch(
    recovered: ServiceReport, baseline: ServiceReport
) -> Optional[str]:
    """First human-readable difference between two reports, or ``None``."""
    if recovered == baseline:
        return None
    for name in ("makespan", "ticks", "shared_rounds", "questions_posted",
                 "cache_hits", "cache_misses", "cache_evictions", "health"):
        a, b = getattr(recovered, name), getattr(baseline, name)
        if a != b:
            return f"{name}: {a!r} != baseline {b!r}"
    if len(recovered.results) != len(baseline.results):
        return (
            f"result count: {len(recovered.results)} != baseline "
            f"{len(baseline.results)}"
        )
    for got, want in zip(recovered.results, baseline.results):
        if got != want:
            for fld in (
                "state", "winner", "correct", "singleton", "latency",
                "queue_wait", "rounds", "questions_posted",
                "plan_cache_hit", "slo_met", "shed_reason",
                "deadline", "deadline_outcome",
            ):
                a, b = getattr(got, fld), getattr(want, fld)
                if a != b:
                    return (
                        f"query {got.spec.query_id} {fld}: "
                        f"{a!r} != baseline {b!r}"
                    )
            return f"query {got.spec.query_id} differs"
    return "reports differ"


# ----------------------------------------------------------------------
# Killing and recovering
# ----------------------------------------------------------------------
def run_with_crash(
    scenario: ChaosScenario,
    crash_after: int,
    journal_path: Union[str, Path],
    baseline: Optional[ServiceReport] = None,
) -> CrashOutcome:
    """Kill a journaled run after *crash_after* steps, recover, compare.

    The kill is simulated by abandoning the scheduler object between
    steps — exactly a process death at a tick boundary, since the journal
    flushes every record before :meth:`~MaxScheduler.step` returns.
    """
    if crash_after < 0:
        raise InvalidParameterError(
            f"crash_after must be >= 0, got {crash_after}"
        )
    if baseline is None:
        baseline = uninterrupted_report(scenario)
    journal = SchedulerJournal.create(
        journal_path, snapshot_interval=scenario.snapshot_interval
    )
    victim = build_scheduler(scenario, journal=journal)
    steps = 0
    while steps < crash_after and victim.step():
        steps += 1
    crashed_at_tick = victim.ticks
    # The kill: drop the object; close the handle so the sweep does not
    # leak file descriptors (every record is already flushed, so closing
    # changes nothing the recovery can observe).
    journal.close()
    del victim

    recovered = recover_scheduler(journal_path)
    recovered_at_tick = recovered.ticks
    report = recovered.run()
    if recovered.journal is not None:
        recovered.journal.close()
    mismatch = describe_mismatch(report, baseline)
    return CrashOutcome(
        crash_after=steps,
        crashed_at_tick=crashed_at_tick,
        recovered_at_tick=recovered_at_tick,
        equivalent=mismatch is None,
        mismatch=mismatch,
    )


def seeded_crash_points(
    scenario: ChaosScenario, n_crashes: int, n_steps: Optional[int] = None
) -> List[int]:
    """*n_crashes* deterministic pseudo-random crash points for a scenario.

    Drawn from a dedicated stream ``(seed, 99)`` over ``[0, total_steps]``
    (inclusive on both ends: killing before the first step and after the
    last are both legal), deduplicated and sorted.
    """
    if n_crashes < 1:
        raise InvalidParameterError(f"n_crashes must be >= 1, got {n_crashes}")
    if n_steps is None:
        n_steps = total_steps(scenario)
    rng = np.random.default_rng((scenario.seed, 99))
    points = sorted(
        {int(p) for p in rng.integers(0, n_steps + 1, size=n_crashes)}
    )
    return points


def run_chaos(
    scenario: ChaosScenario,
    *,
    crash_points: Optional[Sequence[int]] = None,
    n_crashes: Optional[int] = None,
    sweep: bool = False,
    journal_dir: Optional[Union[str, Path]] = None,
) -> ChaosReport:
    """Run the full kill/recover/compare protocol against a scenario.

    Exactly one of *crash_points*, *n_crashes* or *sweep* selects the
    crash schedule:

    * ``crash_points`` — explicit step indices;
    * ``n_crashes`` — seeded-random points via :func:`seeded_crash_points`;
    * ``sweep=True`` — every step boundary from 0 to the total step
      count (the exhaustive acceptance property; mark tests ``slow``).
    """
    chosen = sum(
        1 for flag in (crash_points is not None, n_crashes is not None, sweep)
        if flag
    )
    if chosen != 1:
        raise InvalidParameterError(
            "pass exactly one of crash_points, n_crashes or sweep=True"
        )
    baseline = uninterrupted_report(scenario)
    if sweep:
        points: Sequence[int] = range(total_steps(scenario) + 1)
    elif n_crashes is not None:
        points = seeded_crash_points(scenario, n_crashes)
    else:
        points = list(crash_points)
    if journal_dir is None:
        journal_dir = tempfile.mkdtemp(prefix="tdp-chaos-")
    journal_dir = Path(journal_dir)
    journal_dir.mkdir(parents=True, exist_ok=True)
    outcomes = []
    for point in points:
        outcome = run_with_crash(
            scenario,
            crash_after=point,
            journal_path=journal_dir / f"crash-{point}.jsonl",
            baseline=baseline,
        )
        outcomes.append(outcome)
    return ChaosReport(
        scenario=scenario, baseline=baseline, outcomes=tuple(outcomes)
    )
