"""Theory utilities: expected RC sizes, linear extensions, brute force."""

from repro.analysis.brute_force import (
    BruteForceSolution,
    brute_force_min_latency,
    iter_sequences,
)
from repro.analysis.expected_rc import (
    enumerate_rc_distribution,
    exact_expected_rc,
    lemma4_expected_rc,
    minimal_expected_rc,
    monte_carlo_expected_rc,
    survivors_under_permutation,
    tournament_degrees,
)
from repro.analysis.permutations import count_linear_extensions, p_max

__all__ = [
    "BruteForceSolution",
    "brute_force_min_latency",
    "iter_sequences",
    "enumerate_rc_distribution",
    "exact_expected_rc",
    "lemma4_expected_rc",
    "minimal_expected_rc",
    "monte_carlo_expected_rc",
    "survivors_under_permutation",
    "tournament_degrees",
    "count_linear_extensions",
    "p_max",
]
