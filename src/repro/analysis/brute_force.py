"""Brute-force reference solutions for the MinLatency problem.

Exhaustively enumerates every strictly decreasing candidate-count sequence
``c_0 > c_1 > ... > 1`` whose tournament question total fits the budget and
returns the latency-minimal one.  Exponential (there are ``2^(c_0 - 2)``
sequences), so only usable for small ``c_0`` — which is exactly what the
test suite needs to certify the dynamic-programming solvers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional, Tuple

from repro.core.latency import LatencyFunction
from repro.core.questions import tournament_questions
from repro.errors import InvalidParameterError

_MAX_BRUTE_FORCE_ELEMENTS = 18


@dataclass(frozen=True)
class BruteForceSolution:
    """The exhaustive optimum and how many sequences were examined."""

    sequence: Tuple[int, ...]
    total_latency: float
    questions_used: int
    sequences_examined: int


def iter_sequences(n_elements: int) -> Iterator[Tuple[int, ...]]:
    """All strictly decreasing sequences from ``n_elements`` down to 1."""
    middle = list(range(n_elements - 1, 1, -1))

    def extend(prefix: List[int], start: int) -> Iterator[Tuple[int, ...]]:
        yield tuple(prefix + [1])
        for index in range(start, len(middle)):
            prefix.append(middle[index])
            yield from extend(prefix, index + 1)
            prefix.pop()

    yield from extend([n_elements], 0)


def brute_force_min_latency(
    n_elements: int, budget: int, latency: LatencyFunction
) -> BruteForceSolution:
    """Solve MinLatency by exhaustive enumeration (small inputs only).

    Raises:
        InvalidParameterError: for infeasible budgets or collections larger
            than the enumeration limit.
    """
    if n_elements < 1:
        raise InvalidParameterError(f"n_elements must be >= 1: {n_elements}")
    if n_elements > _MAX_BRUTE_FORCE_ELEMENTS:
        raise InvalidParameterError(
            f"brute force refused for {n_elements} > "
            f"{_MAX_BRUTE_FORCE_ELEMENTS} elements"
        )
    if budget < n_elements - 1:
        raise InvalidParameterError(
            f"budget {budget} < c0 - 1 = {n_elements - 1}: infeasible"
        )
    if n_elements == 1:
        return BruteForceSolution((1,), 0.0, 0, sequences_examined=1)
    best: Optional[BruteForceSolution] = None
    examined = 0
    for sequence in iter_sequences(n_elements):
        examined += 1
        questions = [
            tournament_questions(c_prev, c_next)
            for c_prev, c_next in zip(sequence, sequence[1:])
        ]
        if sum(questions) > budget:
            continue
        total = sum(latency(q) for q in questions)
        if best is None or total < best.total_latency or (
            total == best.total_latency and sum(questions) < best.questions_used
        ):
            best = BruteForceSolution(
                sequence=sequence,
                total_latency=total,
                questions_used=sum(questions),
                sequences_examined=examined,
            )
    assert best is not None  # the one-question-per-round sequence always fits
    return BruteForceSolution(
        sequence=best.sequence,
        total_latency=best.total_latency,
        questions_used=best.questions_used,
        sequences_examined=examined,
    )
