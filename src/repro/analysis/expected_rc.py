"""Appendix A machinery: the distribution of the remaining-candidate count.

Under a *uniform history* (Definition 9: all permutations of the surviving
candidates are equally likely) the expected RC size of a question graph is
``E[R] = sum_v 1 / (d_v + 1)`` (Lemma 4), minimized by near-regular graphs
(Lemma 5) and hence by tournament graphs (Theorem 5).

This module provides exact enumeration (small n), Monte Carlo estimation
(any n), and the closed form — so the test suite can check all three agree
and that tournaments indeed minimize ``E[R]`` at fixed edge counts.
"""

from __future__ import annotations

from collections import Counter
from itertools import permutations
from typing import Counter as CounterType
from typing import Dict, Iterable, List, Sequence, Tuple

import numpy as np

from repro.errors import InvalidParameterError
from repro.graphs.candidates import expected_remaining_candidates
from repro.types import Element, Question

_MAX_EXACT_ELEMENTS = 9


def survivors_under_permutation(
    elements: Sequence[Element],
    questions: Iterable[Question],
    rank: Dict[Element, int],
) -> Tuple[Element, ...]:
    """The RC set if all *questions* are answered per the order *rank*.

    ``rank[e]`` smaller means better; an element survives iff it outranks
    every neighbor it is compared with.
    """
    lost = set()
    for a, b in questions:
        loser = a if rank[a] > rank[b] else b
        lost.add(loser)
    return tuple(e for e in elements if e not in lost)


def enumerate_rc_distribution(
    elements: Sequence[Element], questions: Sequence[Question]
) -> CounterType[int]:
    """Exact distribution of the RC size over all permutations (small n).

    Returns a counter mapping RC size -> number of permutations producing
    it.  The uniform-history expectation is then
    ``sum(size * count) / factorial(n)``.
    """
    elements = list(elements)
    if len(elements) > _MAX_EXACT_ELEMENTS:
        raise InvalidParameterError(
            f"exact enumeration over {len(elements)}! permutations refused; "
            f"limit is {_MAX_EXACT_ELEMENTS} elements"
        )
    counts: CounterType[int] = Counter()
    for order in permutations(elements):
        rank = {element: position for position, element in enumerate(order)}
        counts[len(survivors_under_permutation(elements, questions, rank))] += 1
    return counts


def exact_expected_rc(
    elements: Sequence[Element], questions: Sequence[Question]
) -> float:
    """``E[R]`` by exact enumeration (small n)."""
    counts = enumerate_rc_distribution(elements, questions)
    total = sum(counts.values())
    return sum(size * count for size, count in counts.items()) / total


def monte_carlo_expected_rc(
    elements: Sequence[Element],
    questions: Sequence[Question],
    n_samples: int,
    rng: np.random.Generator,
) -> float:
    """``E[R]`` estimated from random permutations (any n)."""
    if n_samples < 1:
        raise InvalidParameterError(f"n_samples must be >= 1: {n_samples}")
    elements = list(elements)
    total = 0
    for _ in range(n_samples):
        order = list(elements)
        rng.shuffle(order)
        rank = {element: position for position, element in enumerate(order)}
        total += len(survivors_under_permutation(elements, questions, rank))
    return total / n_samples


def lemma4_expected_rc(
    elements: Sequence[Element], questions: Sequence[Question]
) -> float:
    """``E[R] = sum_v 1 / (d_v + 1)`` — the Lemma 4 closed form."""
    return expected_remaining_candidates(elements, questions)


def regular_degree_bounds(n_elements: int, n_edges: int) -> Tuple[int, int]:
    """The Lemma 5 optimal degree range ``[floor(2E/V), ceil(2E/V)]``."""
    if n_elements < 1:
        raise InvalidParameterError("n_elements must be >= 1")
    if n_edges < 0:
        raise InvalidParameterError("n_edges must be >= 0")
    average_doubled = 2 * n_edges
    return average_doubled // n_elements, -(-average_doubled // n_elements)


def minimal_expected_rc(n_elements: int, n_edges: int) -> float:
    """The smallest achievable ``E[R]`` with the given node/edge counts.

    By Lemma 5 a near-regular degree sequence is optimal: ``r`` nodes of
    degree ``ceil(2E/V)`` and the rest of degree ``floor(2E/V)``, where
    ``r = 2E mod V``.
    """
    low, high = regular_degree_bounds(n_elements, n_edges)
    remainder = (2 * n_edges) % n_elements
    return remainder / (high + 1) + (n_elements - remainder) / (low + 1)


def degree_sequence_expected_rc(degrees: Sequence[int]) -> float:
    """``E[R]`` for an explicit degree sequence (uniform history)."""
    if any(degree < 0 for degree in degrees):
        raise InvalidParameterError("degrees must be >= 0")
    return sum(1.0 / (degree + 1) for degree in degrees)


def tournament_degrees(sizes: Sequence[int]) -> List[int]:
    """Degree sequence of a tournament graph with the given clique sizes."""
    degrees: List[int] = []
    for size in sizes:
        if size < 1:
            raise InvalidParameterError("tournament sizes must be >= 1")
        degrees.extend([size - 1] * size)
    return degrees
