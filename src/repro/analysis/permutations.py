"""Linear-extension counting and the exact probability of being the MAX.

Appendix B.1 of the paper proves that computing ``P-Max`` — the probability
that a given element is the MAX, conditioned on the answers seen so far and
a uniform prior over permutations — is #P-hard, by reduction from counting
linear extensions (LE-Count).  This module implements both quantities
*exactly* by dynamic programming over subsets, which is exponential in the
number of elements and therefore only usable for small collections; that is
precisely the point of the hardness result, and the exact values let the
test suite validate the scoring surrogate and the Lemma 4 expectations.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Dict, Tuple

from repro.errors import InvalidParameterError
from repro.graphs.answer_graph import AnswerGraph
from repro.types import Answer, Element

_MAX_EXACT_ELEMENTS = 20


def _check_size(n_elements: int) -> None:
    if n_elements > _MAX_EXACT_ELEMENTS:
        raise InvalidParameterError(
            f"exact permutation computations are exponential; refusing "
            f"{n_elements} > {_MAX_EXACT_ELEMENTS} elements"
        )


def count_linear_extensions(graph: AnswerGraph) -> int:
    """Number of total orders consistent with the recorded answers.

    Uses the classic subset DP: a linear extension is built from the bottom
    (smallest element first); an element can be placed next if everything it
    beat has already been placed.  Runtime ``O(2^n * n)``.
    """
    elements = tuple(sorted(graph.elements))
    _check_size(len(elements))
    index = {element: i for i, element in enumerate(elements)}
    # beaten_mask[i] = bitmask of elements that element i beat directly.
    beaten_mask = [0] * len(elements)
    for i, element in enumerate(elements):
        for loser in graph.losers_to(element):
            beaten_mask[i] |= 1 << index[loser]

    full = (1 << len(elements)) - 1

    @lru_cache(maxsize=None)
    def extensions(placed: int) -> int:
        if placed == full:
            return 1
        total = 0
        for i in range(len(elements)):
            bit = 1 << i
            if placed & bit:
                continue
            # Element i can be the next-smallest if everything it beat is
            # already placed (it must rank above all of them).
            if beaten_mask[i] & ~placed:
                continue
            # It must also not have beaten-by constraints violated: anyone
            # who beat i must still be unplaced (they rank above i).  That
            # is automatic: if w beat i and w were placed, then i would have
            # been required before w.  Enforce explicitly for safety.
            total += extensions(placed | bit)
        return total

    # Verify consistency first: zero extensions signals a cycle.
    graph.validate_acyclic()
    result = extensions(0)
    extensions.cache_clear()
    return result


def p_max(graph: AnswerGraph) -> Dict[Element, float]:
    """Exact ``P-Max``: probability each element is the MAX given the answers.

    Conditioning is on a uniform prior over all permutations consistent with
    the answer DAG.  Elements that lost a comparison have probability 0.
    Runtime ``O(2^n * n^2)``.
    """
    elements = tuple(sorted(graph.elements))
    _check_size(len(elements))
    total = count_linear_extensions(graph)
    if total == 0:
        raise InvalidParameterError("the answer graph admits no linear extension")
    probabilities: Dict[Element, float] = {}
    for element in elements:
        if graph.winners_over(element):
            probabilities[element] = 0.0
            continue
        probabilities[element] = (
            _extensions_with_max(graph, elements, element) / total
        )
    return probabilities


def _extensions_with_max(
    graph: AnswerGraph, elements: Tuple[Element, ...], candidate: Element
) -> int:
    """Linear extensions in which *candidate* is the top element.

    Equivalent to counting extensions of the DAG augmented with "candidate
    beats everyone": candidate must be placed last in the bottom-up DP.
    """
    augmented = AnswerGraph(elements)
    for answer in graph.iter_answers():
        augmented.record(answer)
    for other in elements:
        if other != candidate:
            augmented.record(Answer(winner=candidate, loser=other))
    return count_linear_extensions(augmented)
