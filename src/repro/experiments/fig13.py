"""Figure 13: latency of the budget allocators across workloads.

* Figure 13(a) — fixed budget (4000), varying collection size
  (125..2000 elements);
* Figure 13(b) — fixed collection (500 elements), varying budget
  (500..32000 questions).

Following Section 6.3, tDP runs with Tournament formation while the four
heuristics run with CT25 ("our goal is to explore whether our approach gives
significant gains in latency compared to the alternatives, even if the
alternatives have a low probability of singleton termination").

The headline shapes: tDP is lowest everywhere; in 13(b) tDP's latency goes
*flat* past the point where extra questions stop helping (it leaves budget
unused), while every heuristic keeps spending and gets two to four times
slower at b = 32000.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.core.registry import allocator_by_name
from repro.engine.simulation import aggregate
from repro.experiments.config import (
    ALLOCATOR_NAMES,
    ExperimentScale,
    FULL,
    derive_seed,
    estimated_latency,
)
from repro.experiments.tables import ExperimentResult
from repro.selection.base import QuestionSelector
from repro.selection.ct import ct25
from repro.selection.tournament import TournamentFormation

FULL_COLLECTION_SIZES: Tuple[int, ...] = (125, 250, 500, 1000, 2000)
SMALL_COLLECTION_SIZES: Tuple[int, ...] = (20, 40, 60)
FULL_BUDGETS: Tuple[int, ...] = (500, 1000, 2000, 4000, 8000, 16000, 32000)
SMALL_BUDGETS: Tuple[int, ...] = (100, 200, 400, 800)


def selector_for(allocator_name: str) -> QuestionSelector:
    """Section 6.3 pairing: tDP with Tournament, heuristics with CT25."""
    if allocator_name.startswith("tDP"):
        return TournamentFormation()
    return ct25()


def _sweep_row(
    n_elements: int,
    budget: int,
    scale: ExperimentScale,
    tag: int,
) -> List[float]:
    latency = estimated_latency()
    row = []
    for allocator_name in ALLOCATOR_NAMES:
        stats = aggregate(
            n_elements=n_elements,
            budget=budget,
            allocator=allocator_by_name(allocator_name),
            selector=selector_for(allocator_name),
            latency=latency,
            n_runs=scale.n_runs,
            seed=derive_seed(scale.seed, tag, n_elements, budget, allocator_name),
        )
        row.append(stats.mean_latency)
    return row


def run_collection_sweep(
    scale: ExperimentScale = FULL,
    collection_sizes: Optional[Sequence[int]] = None,
) -> ExperimentResult:
    """Figure 13(a): latency vs number of initial elements."""
    if collection_sizes is None:
        collection_sizes = (
            FULL_COLLECTION_SIZES if scale.name == "full" else SMALL_COLLECTION_SIZES
        )
    table = ExperimentResult(
        name="fig13a",
        title="Latency vs collection size (fixed budget)",
        columns=("c0",) + tuple(f"{n} (s)" for n in ALLOCATOR_NAMES),
        notes=(
            f"b={scale.budget}, {scale.n_runs} runs per point; tDP with "
            f"Tournament selection, heuristics with CT25"
        ),
    )
    for n_elements in collection_sizes:
        table.add_row(
            n_elements, *_sweep_row(n_elements, scale.budget, scale, tag=0x13A)
        )
    return table


def run_budget_sweep(
    scale: ExperimentScale = FULL,
    budgets: Optional[Sequence[int]] = None,
) -> ExperimentResult:
    """Figure 13(b): latency vs available budget (fixed collection)."""
    if budgets is None:
        budgets = FULL_BUDGETS if scale.name == "full" else SMALL_BUDGETS
    table = ExperimentResult(
        name="fig13b",
        title="Latency vs available budget (fixed collection)",
        columns=("budget",) + tuple(f"{n} (s)" for n in ALLOCATOR_NAMES),
        notes=(
            f"c0={scale.n_elements}, {scale.n_runs} runs per point; tDP with "
            f"Tournament selection, heuristics with CT25"
        ),
    )
    for budget in budgets:
        table.add_row(
            budget, *_sweep_row(scale.n_elements, budget, scale, tag=0x13B)
        )
    return table


def run(scale: ExperimentScale = FULL) -> List[ExperimentResult]:
    """Both Figure 13 panels."""
    return [run_collection_sweep(scale), run_budget_sweep(scale)]
