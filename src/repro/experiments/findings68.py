"""Section 6.8: programmatic checks of the paper's summarized findings.

The paper closes its evaluation with six findings, several of which refer
to "other experiments that we did not include in this paper" — the full
allocator x selector grid.  This experiment runs that grid (all five
budget allocators under Tournament formation, CT25 and SG25) and evaluates
the findings that are grid-checkable:

* (3) the uniform allocators (uHE, uHF) achieve lower latency than HE, HF
  under any question-selection strategy;
* (4) the uniform allocators achieve a higher (or equal) singleton-
  termination probability than HE, HF, except near the minimum budget;
* (5) Tournament formation achieves the highest singleton-termination
  probability under any budget allocation algorithm.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.core.registry import allocator_by_name
from repro.engine.simulation import aggregate
from repro.experiments.config import (
    ALLOCATOR_NAMES,
    ExperimentScale,
    FULL,
    derive_seed,
    estimated_latency,
)
from repro.experiments.tables import ExperimentResult
from repro.selection.ct import ct25
from repro.selection.greedy import SpreadGreedy
from repro.selection.tournament import TournamentFormation

SELECTOR_FACTORIES = (TournamentFormation, ct25, SpreadGreedy)


def run(scale: ExperimentScale = FULL) -> List[ExperimentResult]:
    """Run the allocator x selector grid and evaluate findings (3)-(5)."""
    latency = estimated_latency()
    grid = ExperimentResult(
        name="findings68-grid",
        title="Allocator x selector grid: latency and singleton termination",
        columns=(
            "allocator",
            "selector",
            "mean latency (s)",
            "singleton %",
        ),
        notes=(
            f"c0={scale.n_elements}, b={scale.budget}, {scale.n_runs} runs "
            f"per cell"
        ),
    )
    stats: Dict[Tuple[str, str], Tuple[float, float]] = {}
    for allocator_name in ALLOCATOR_NAMES:
        if allocator_name.startswith("tDP"):
            continue  # findings (3)-(5) compare the heuristics
        for selector_factory in SELECTOR_FACTORIES:
            selector = selector_factory()
            cell = aggregate(
                n_elements=scale.n_elements,
                budget=scale.budget,
                allocator=allocator_by_name(allocator_name),
                selector=selector,
                latency=latency,
                n_runs=scale.n_runs,
                seed=derive_seed(
                    scale.seed, 0x68, allocator_name, selector.name
                ),
            )
            stats[(allocator_name, selector.name)] = (
                cell.mean_latency,
                100.0 * cell.singleton_rate,
            )
            grid.add_row(
                allocator_name,
                selector.name,
                cell.mean_latency,
                100.0 * cell.singleton_rate,
            )

    verdicts = ExperimentResult(
        name="findings68-verdicts",
        title="Paper findings (Section 6.8) evaluated on the grid",
        columns=("finding", "claim", "holds"),
    )
    selector_names = [factory().name for factory in SELECTOR_FACTORIES]
    finding3 = all(
        min(
            stats[("uHE", selector)][0], stats[("uHF", selector)][0]
        )
        <= min(stats[("HE", selector)][0], stats[("HF", selector)][0])
        for selector in selector_names
    )
    verdicts.add_row(
        "(3)",
        "uniform allocators beat HE/HF on latency under every selector",
        finding3,
    )
    finding4 = all(
        max(stats[("uHE", selector)][1], stats[("uHF", selector)][1])
        >= max(stats[("HE", selector)][1], stats[("HF", selector)][1])
        for selector in selector_names
    )
    verdicts.add_row(
        "(4)",
        "uniform allocators match or beat HE/HF on singleton termination "
        "(budget well above the minimum)",
        finding4,
    )
    finding5 = all(
        stats[(allocator, "Tournament")][1]
        >= max(
            stats[(allocator, selector)][1] for selector in selector_names
        )
        for allocator in ("HE", "HF", "uHE", "uHF")
    )
    verdicts.add_row(
        "(5)",
        "Tournament formation has the highest singleton rate under every "
        "allocator",
        finding5,
    )
    return [grid, verdicts]
