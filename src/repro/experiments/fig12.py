"""Figure 12: comparison of the question-selection algorithms.

Varies the available budget and compares Tournament-formation against CT25
under both the tDP and HF budget allocations:

* Figure 12(a) — mean time until the MAX (estimated L(q), 100 runs);
* Figure 12(b) — percentage of runs achieving singleton termination.

The paper's finding: CT25 sometimes shaves a little latency, but at low
budgets it frequently fails to single out the MAX, while Tournament
formation singleton-terminates in every run.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.core.heuristics import HeavyFront
from repro.core.tdp import TDPAllocator
from repro.engine.simulation import aggregate
from repro.experiments.config import (
    ExperimentScale,
    FULL,
    derive_seed,
    estimated_latency,
)
from repro.experiments.tables import ExperimentResult
from repro.selection.ct import ct25
from repro.selection.tournament import TournamentFormation

FULL_BUDGETS: Tuple[int, ...] = (500, 1000, 2000, 4000, 8000)
SMALL_BUDGETS: Tuple[int, ...] = (100, 200, 400)


def _combos():
    return (
        ("tDP + Tournament", TDPAllocator(), TournamentFormation()),
        ("tDP + CT25", TDPAllocator(), ct25()),
        ("HF + Tournament", HeavyFront(), TournamentFormation()),
        ("HF + CT25", HeavyFront(), ct25()),
    )


def run(
    scale: ExperimentScale = FULL,
    budgets: Optional[Sequence[int]] = None,
) -> List[ExperimentResult]:
    """Sweep the budget; report latency and singleton-termination rates."""
    if budgets is None:
        budgets = FULL_BUDGETS if scale.name == "full" else SMALL_BUDGETS
    latency = estimated_latency()
    combos = _combos()
    latency_table = ExperimentResult(
        name="fig12a",
        title="Latency of question-selection strategies vs budget",
        columns=("budget",) + tuple(f"{name} (s)" for name, _, _ in combos),
        notes=(
            f"c0={scale.n_elements}, {scale.n_runs} runs per point, "
            f"estimated L(q)"
        ),
    )
    singleton_table = ExperimentResult(
        name="fig12b",
        title="Singleton-termination percentage vs budget",
        columns=("budget",) + tuple(f"{name} (%)" for name, _, _ in combos),
        notes=f"c0={scale.n_elements}, {scale.n_runs} runs per point",
    )
    for budget in budgets:
        latencies = []
        singleton_rates = []
        for combo_index, (_, allocator, selector) in enumerate(combos):
            stats = aggregate(
                n_elements=scale.n_elements,
                budget=budget,
                allocator=allocator,
                selector=selector,
                latency=latency,
                n_runs=scale.n_runs,
                seed=derive_seed(scale.seed, 0x12, budget, combo_index),
            )
            latencies.append(stats.mean_latency)
            singleton_rates.append(100.0 * stats.singleton_rate)
        latency_table.add_row(budget, *latencies)
        singleton_table.add_row(budget, *singleton_rates)
    return [latency_table, singleton_table]
