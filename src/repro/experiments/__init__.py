"""Reproductions of every figure in the paper's evaluation (Section 6)."""

from repro.experiments.config import (
    ALLOCATOR_NAMES,
    ExperimentScale,
    FULL,
    SMALL,
    estimated_latency,
    scale_by_name,
)
from repro.experiments.tables import ExperimentResult

__all__ = [
    "ALLOCATOR_NAMES",
    "ExperimentScale",
    "FULL",
    "SMALL",
    "estimated_latency",
    "scale_by_name",
    "ExperimentResult",
]
