"""Figure 11(b): real-time runs on the (simulated) platform.

The paper applied tDP, HE, HF, uHE and uHF — all fed the *estimated* L(q)
from Figure 11(a) — to the 500-car collection with a budget of 4000
questions, posted the rounds for real on MTurk (tournament selection, five
repetitions each) and compared the measured time-to-MAX (solid bars)
against the time predicted by the estimate (striped bars).

Here "posting for real" means running against the simulated platform, whose
latency behaviour the estimate only roughly captures — which is the point:
tDP must win even under a coarse L(q).
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.core.latency import LinearLatency
from repro.core.registry import allocator_by_name
from repro.crowd.ground_truth import GroundTruth
from repro.crowd.platform import SimulatedPlatform
from repro.crowd.rwl import ReliableWorkerLayer
from repro.engine.max_engine import (
    MaxEngine,
    OracleAnswerSource,
    PlatformAnswerSource,
)
from repro.experiments import fig11a
from repro.experiments.config import ALLOCATOR_NAMES, ExperimentScale, FULL
from repro.experiments.tables import ExperimentResult
from repro.selection.tournament import TournamentFormation

PAPER_REAL_RUNS = 5


def run(
    scale: ExperimentScale = FULL,
    estimate: Optional[LinearLatency] = None,
    n_real_runs: Optional[int] = None,
) -> List[ExperimentResult]:
    """Measure real (simulated-platform) vs estimated time-to-MAX."""
    if estimate is None:
        estimate = fig11a.estimate_latency(scale).fitted
    if n_real_runs is None:
        n_real_runs = PAPER_REAL_RUNS if scale.name == "full" else 2
    table = ExperimentResult(
        name="fig11b",
        title="Time until the MAX, per allocation algorithm "
        "(real platform vs estimated L(q))",
        columns=(
            "allocator",
            "real time (s)",
            "estimated time (s)",
            "rounds",
            "questions",
        ),
        notes=(
            f"c0={scale.n_elements}, b={scale.budget}, tournament selection, "
            f"{n_real_runs} real runs per allocator; estimate "
            f"L(q) = {estimate.delta:.0f} + {estimate.alpha:.3f} * q"
        ),
    )
    for allocator_name in ALLOCATOR_NAMES:
        allocator = allocator_by_name(allocator_name)
        allocation = allocator.allocate(scale.n_elements, scale.budget, estimate)
        real_times = []
        questions = rounds = 0
        for run_index in range(n_real_runs):
            rng = np.random.default_rng((scale.seed, 0x11B, run_index))
            truth = GroundTruth.random(scale.n_elements, rng)
            platform = SimulatedPlatform(truth, rng)
            source = PlatformAnswerSource(ReliableWorkerLayer(platform, rng))
            engine = MaxEngine(TournamentFormation(), source, rng)
            result = engine.run(truth, allocation)
            real_times.append(result.total_latency)
            questions, rounds = result.total_questions, result.rounds_run
        # The "striped bar": the same run timed by the estimate instead of
        # the platform.
        rng = np.random.default_rng((scale.seed, 0x11B, 0xE57))
        truth = GroundTruth.random(scale.n_elements, rng)
        engine = MaxEngine(
            TournamentFormation(), OracleAnswerSource(truth, estimate), rng
        )
        estimated = engine.run(truth, allocation).total_latency
        table.add_row(
            allocator_name,
            sum(real_times) / len(real_times),
            estimated,
            rounds,
            questions,
        )
    return [table]
