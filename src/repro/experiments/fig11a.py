"""Figure 11(a): estimating the latency function L(q) on the platform.

The paper published batches of 10..1280 car-comparison questions on MTurk,
20 times per size, measured the time until the last answer of each batch,
and fitted ``L(q) = delta + alpha * q`` by least squares (obtaining
delta = 239, alpha = 0.06).  We do the same against the simulated platform:
post batches of random comparisons, measure the emergent completion time,
and fit the linear estimate that the other experiments consume.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.core.latency import LinearLatency, fit_linear_latency
from repro.crowd.ground_truth import GroundTruth
from repro.crowd.platform import SimulatedPlatform
from repro.crowd.workers import WorkerPoolConfig
from repro.errors import InvalidParameterError
from repro.experiments.config import ExperimentScale, FULL
from repro.experiments.tables import ExperimentResult
from repro.types import Question

FULL_BATCH_SIZES: Tuple[int, ...] = (10, 20, 40, 80, 160, 320, 640, 1280)
SMALL_BATCH_SIZES: Tuple[int, ...] = (10, 40, 160, 640)
PAPER_REPEATS = 20


@dataclass(frozen=True)
class LatencyEstimate:
    """Outcome of the estimation: measurements plus the fitted model."""

    table: ExperimentResult
    fitted: LinearLatency
    samples: Tuple[Tuple[int, float], ...]


def _random_batch(
    n_elements: int, batch_size: int, rng: np.random.Generator
) -> List[Question]:
    """Random comparison pairs (like publishing arbitrary car pairs)."""
    if n_elements < 2:
        raise InvalidParameterError("need at least two elements to compare")
    first = rng.integers(0, n_elements, size=batch_size)
    offset = rng.integers(1, n_elements, size=batch_size)
    second = (first + offset) % n_elements
    return [
        (int(a), int(b)) if a < b else (int(b), int(a))
        for a, b in zip(first, second)
    ]


def estimate_latency(
    scale: ExperimentScale = FULL,
    batch_sizes: Optional[Sequence[int]] = None,
    repeats: Optional[int] = None,
    pool: Optional[WorkerPoolConfig] = None,
) -> LatencyEstimate:
    """Measure per-batch-size completion times and fit the linear model."""
    if batch_sizes is None:
        batch_sizes = FULL_BATCH_SIZES if scale.name == "full" else SMALL_BATCH_SIZES
    if repeats is None:
        repeats = PAPER_REPEATS if scale.name == "full" else 5
    rng = np.random.default_rng((scale.seed, 0x11A))
    truth = GroundTruth.random(scale.n_elements, rng)
    platform = SimulatedPlatform(truth, rng, config=pool)

    samples: List[Tuple[int, float]] = []
    means: List[Tuple[int, float]] = []
    for batch_size in batch_sizes:
        times = []
        for _ in range(repeats):
            batch = _random_batch(scale.n_elements, batch_size, rng)
            times.append(platform.post_batch(batch).completion_time)
            samples.append((batch_size, times[-1]))
        means.append((batch_size, sum(times) / len(times)))

    fitted = fit_linear_latency(samples)
    table = ExperimentResult(
        name="fig11a",
        title="Estimation of L(q): batch size vs time until last answer",
        columns=("batch size q", "measured mean (s)", "fitted L(q) (s)"),
        notes=(
            f"fitted L(q) = {fitted.delta:.0f} + {fitted.alpha:.3f} * q "
            f"(paper: 239 + 0.060 * q); {repeats} batches per size"
        ),
    )
    for batch_size, mean_time in means:
        table.add_row(batch_size, mean_time, fitted(batch_size))
    return LatencyEstimate(table=table, fitted=fitted, samples=tuple(samples))


def run(scale: ExperimentScale = FULL) -> List[ExperimentResult]:
    """Experiment entry point (uniform across figure modules)."""
    return [estimate_latency(scale).table]
