"""Shared configuration for the Section 6 experiment reproductions.

Each experiment accepts an :class:`ExperimentScale` preset: ``full`` mirrors
the paper's parameters (500-2000 elements, 100 runs); ``small`` shrinks the
sweep so the whole suite — including the pytest benchmarks — stays fast.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from typing import Tuple

from repro.core.latency import LinearLatency, mturk_car_latency
from repro.errors import InvalidParameterError


def derive_seed(*parts: object) -> int:
    """A process-stable seed derived from arbitrary hashable parts.

    ``hash()`` on strings is salted per interpreter run; CRC32 of the repr
    is not, so experiment results are reproducible across processes.
    """
    return zlib.crc32(repr(parts).encode("utf-8"))

#: The paper's default workload: 500 cars, budget of 4000 questions.
PAPER_N_ELEMENTS = 500
PAPER_BUDGET = 4000
PAPER_RUNS = 100

#: Budget allocators compared throughout Section 6.
ALLOCATOR_NAMES: Tuple[str, ...] = ("tDP", "HE", "HF", "uHE", "uHF")


@dataclass(frozen=True)
class ExperimentScale:
    """Size preset for an experiment sweep.

    Attributes:
        name: ``full`` or ``small``.
        n_runs: repetitions per configuration (paper: 100).
        n_elements: default collection size (paper: 500).
        budget: default question budget (paper: 4000).
        seed: base seed; every configuration derives its own substream.
    """

    name: str
    n_runs: int
    n_elements: int
    budget: int
    seed: int = 20150531  # SIGMOD'15 started May 31, 2015

    def __post_init__(self) -> None:
        if self.n_runs < 1:
            raise InvalidParameterError("n_runs must be >= 1")
        if self.n_elements < 2:
            raise InvalidParameterError("n_elements must be >= 2")
        if self.budget < self.n_elements - 1:
            raise InvalidParameterError("budget must be >= n_elements - 1")


FULL = ExperimentScale(
    name="full",
    n_runs=PAPER_RUNS,
    n_elements=PAPER_N_ELEMENTS,
    budget=PAPER_BUDGET,
)

SMALL = ExperimentScale(
    name="small",
    n_runs=10,
    n_elements=60,
    budget=500,
)


def scale_by_name(name: str) -> ExperimentScale:
    """Resolve ``full`` / ``small`` (case-insensitive)."""
    presets = {"full": FULL, "small": SMALL}
    try:
        return presets[name.lower()]
    except KeyError:
        raise InvalidParameterError(
            f"unknown scale {name!r}; available: {sorted(presets)}"
        ) from None


def estimated_latency() -> LinearLatency:
    """The L(q) estimate all deterministic experiments use (Section 6.1)."""
    return mturk_car_latency()
