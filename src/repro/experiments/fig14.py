"""Figure 14: behaviour under non-linear latency functions.

Section 6.6 generalizes the latency model to ``L(q) = delta + alpha * q**p``
(delta = 239, alpha = 0.06) and varies the exponent ``p``:

* Figure 14(a) — latency to the MAX per allocator as ``p`` grows: the gap
  between tDP and everything else explodes (about 12x over the second best
  at ``p = 2.0``), because only tDP consults L(q);
* Figure 14(b) — questions tDP actually uses vs the available budget, per
  ``p``: the stronger the superlinearity, the earlier tDP caps its spend,
  while the heuristics always burn the whole budget.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.core.latency import PowerLawLatency
from repro.core.questions import max_useful_budget
from repro.core.registry import allocator_by_name
from repro.core.tdp import TDPAllocator
from repro.engine.simulation import aggregate
from repro.experiments.config import (
    ALLOCATOR_NAMES,
    ExperimentScale,
    FULL,
    derive_seed,
)
from repro.experiments.fig13 import selector_for
from repro.experiments.tables import ExperimentResult

FULL_EXPONENTS: Tuple[float, ...] = (1.0, 1.2, 1.4, 1.6, 1.8, 2.0)
SMALL_EXPONENTS: Tuple[float, ...] = (1.0, 1.5, 2.0)
FULL_BUDGETS: Tuple[int, ...] = (500, 1000, 2000, 4000, 8000, 16000, 32000)
SMALL_BUDGETS: Tuple[int, ...] = (100, 200, 400, 800)
USAGE_EXPONENTS: Tuple[float, ...] = (1.0, 1.4, 1.8)

PAPER_DELTA = 239.0
PAPER_ALPHA = 0.06


def power_latency(p: float) -> PowerLawLatency:
    """The Section 6.6 family with the paper's delta and alpha."""
    return PowerLawLatency(PAPER_DELTA, PAPER_ALPHA, p)


def run_exponent_sweep(
    scale: ExperimentScale = FULL,
    exponents: Optional[Sequence[float]] = None,
) -> ExperimentResult:
    """Figure 14(a): latency per allocator as the exponent p varies."""
    if exponents is None:
        exponents = FULL_EXPONENTS if scale.name == "full" else SMALL_EXPONENTS
    table = ExperimentResult(
        name="fig14a",
        title="Latency vs latency-function exponent p",
        columns=("p",) + tuple(f"{n} (s)" for n in ALLOCATOR_NAMES),
        notes=(
            f"c0={scale.n_elements}, b={scale.budget}, "
            f"L(q) = {PAPER_DELTA:.0f} + {PAPER_ALPHA} * q^p, "
            f"{scale.n_runs} runs per point"
        ),
    )
    for p in exponents:
        latency = power_latency(p)
        row = []
        for allocator_name in ALLOCATOR_NAMES:
            stats = aggregate(
                n_elements=scale.n_elements,
                budget=scale.budget,
                allocator=allocator_by_name(allocator_name),
                selector=selector_for(allocator_name),
                latency=latency,
                n_runs=scale.n_runs,
                seed=derive_seed(scale.seed, 0x14A, p, allocator_name),
            )
            row.append(stats.mean_latency)
        table.add_row(p, *row)
    return table


def run_budget_usage(
    scale: ExperimentScale = FULL,
    budgets: Optional[Sequence[int]] = None,
    exponents: Sequence[float] = USAGE_EXPONENTS,
) -> ExperimentResult:
    """Figure 14(b): questions used by tDP vs the available budget, per p.

    The "others" column is every heuristic's behaviour: they use the whole
    budget (up to the complete-tournament cap of ``C(c0, 2)`` questions).
    """
    if budgets is None:
        budgets = FULL_BUDGETS if scale.name == "full" else SMALL_BUDGETS
    tdp = TDPAllocator()
    table = ExperimentResult(
        name="fig14b",
        title="Budget used by tDP vs budget available",
        columns=("budget available",)
        + tuple(f"tDP used, p={p:g}" for p in exponents)
        + ("others used",),
        notes=f"c0={scale.n_elements}; others always spend the whole budget",
    )
    cap = max_useful_budget(scale.n_elements)
    for budget in budgets:
        used = [
            tdp.plan(scale.n_elements, budget, power_latency(p)).questions_used
            for p in exponents
        ]
        table.add_row(budget, *used, min(budget, cap))
    return table


def run(scale: ExperimentScale = FULL) -> List[ExperimentResult]:
    """Both Figure 14 panels."""
    return [run_exponent_sweep(scale), run_budget_usage(scale)]
