"""Figure 15: the running time of computing a tDP allocation.

The paper measured tDP's wall-clock time for 250..2000 elements with
budgets of 2x..16x the element count and observed two things: (a) the time
grows only slightly with the budget (the top-down evaluation prunes most of
the ``c0 * b`` state space), and (b) doubling the element count multiplies
the time by roughly 4 (the ``c0^2`` factor).

We time both solvers: the production Pareto-frontier solver (whose runtime
is inherently almost independent of the budget) and, for the smaller
inputs, the literal Algorithm 1 memoized recursion.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.core.latency import mturk_car_latency
from repro.core.tdp import solve_min_latency
from repro.core.tdp_memo import solve_min_latency_memo
from repro.experiments.config import ExperimentScale, FULL
from repro.experiments.tables import ExperimentResult
from repro.obs.tracer import timed

FULL_COLLECTION_SIZES: Tuple[int, ...] = (250, 500, 1000, 2000)
SMALL_COLLECTION_SIZES: Tuple[int, ...] = (50, 100)
BUDGET_MULTIPLES: Tuple[int, ...] = (2, 4, 8, 16)

#: Largest collection for which timing the literal Algorithm 1 is sensible.
MEMO_SIZE_LIMIT = 100


def run(
    scale: ExperimentScale = FULL,
    collection_sizes: Optional[Sequence[int]] = None,
    budget_multiples: Sequence[int] = BUDGET_MULTIPLES,
) -> List[ExperimentResult]:
    """Time the allocators across the paper's (c0, b) grid."""
    if collection_sizes is None:
        collection_sizes = (
            FULL_COLLECTION_SIZES if scale.name == "full" else SMALL_COLLECTION_SIZES
        )
    latency = mturk_car_latency()
    table = ExperimentResult(
        name="fig15",
        title="Running time of tDP (seconds)",
        columns=(
            "c0",
            "budget multiple",
            "budget",
            "tDP (s)",
            "Algorithm 1 memo (s)",
            "memo states",
        ),
        notes=(
            "tDP = Pareto-frontier solver; the memoized literal Algorithm 1 "
            f"is timed only up to c0 = {MEMO_SIZE_LIMIT}"
        ),
    )
    for n_elements in collection_sizes:
        for multiple in budget_multiples:
            budget = n_elements * multiple
            with timed("fig15.tdp") as tdp_span:
                solve_min_latency(n_elements, budget, latency)
            tdp_seconds = tdp_span.seconds
            memo_seconds: float = float("nan")
            memo_states: object = "-"
            if n_elements <= MEMO_SIZE_LIMIT:
                with timed("fig15.memo") as memo_span:
                    memo_plan = solve_min_latency_memo(
                        n_elements, budget, latency
                    )
                memo_seconds = memo_span.seconds
                memo_states = memo_plan.states_visited
            table.add_row(
                n_elements,
                multiple,
                budget,
                tdp_seconds,
                memo_seconds,
                memo_states,
            )
    return [table]
