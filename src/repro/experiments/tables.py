"""Plain-text table formatting for experiment results.

Every experiment produces an :class:`ExperimentResult` whose rows mirror the
series of the corresponding paper figure; ``to_text()`` renders them as an
aligned table for terminals, logs and EXPERIMENTS.md.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence, Tuple

from repro.errors import ExperimentError


def format_cell(value: object) -> str:
    """Human-friendly rendering of one table cell."""
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        if value != value:  # NaN
            return "-"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        if 0 < abs(value) < 1:
            return f"{value:.4g}"
        return f"{value:.2f}".rstrip("0").rstrip(".")
    return str(value)


@dataclass
class ExperimentResult:
    """Tabular outcome of one experiment.

    Attributes:
        name: experiment identifier (e.g. ``fig13a``).
        title: what the paper figure shows.
        columns: column headers.
        rows: data rows (one tuple per row, same arity as columns).
        notes: free-form remarks (deviations, parameters used, etc.).
    """

    name: str
    title: str
    columns: Sequence[str]
    rows: List[Tuple] = field(default_factory=list)
    notes: str = ""

    def add_row(self, *values: object) -> None:
        if len(values) != len(self.columns):
            raise ExperimentError(
                f"{self.name}: row of {len(values)} values does not match "
                f"{len(self.columns)} columns"
            )
        self.rows.append(tuple(values))

    def to_text(self) -> str:
        """Render as an aligned monospace table."""
        header = [str(c) for c in self.columns]
        body = [[format_cell(v) for v in row] for row in self.rows]
        widths = [
            max(len(header[i]), *(len(r[i]) for r in body)) if body else len(header[i])
            for i in range(len(header))
        ]
        lines = [f"# {self.name}: {self.title}"]
        lines.append("  ".join(h.ljust(w) for h, w in zip(header, widths)))
        lines.append("  ".join("-" * w for w in widths))
        for row in body:
            lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
        if self.notes:
            lines.append("")
            lines.append(f"notes: {self.notes}")
        return "\n".join(lines)

    def column(self, name: str) -> List[object]:
        """Values of one column across all rows (for tests and plots)."""
        try:
            index = list(self.columns).index(name)
        except ValueError:
            raise ExperimentError(
                f"{self.name}: no column {name!r}; have {list(self.columns)}"
            ) from None
        return [row[index] for row in self.rows]
