"""Exporting experiment results: JSON, CSV and Markdown.

Experiment tables are plain data; these helpers serialize them for
notebooks, spreadsheets and reports (EXPERIMENTS.md is generated in this
format).  All functions are pure string producers; the CLI decides where
the bytes go.
"""

from __future__ import annotations

import csv
import io
import json
from typing import List, Sequence

from repro.errors import InvalidParameterError
from repro.experiments.tables import ExperimentResult, format_cell


def to_json(tables: Sequence[ExperimentResult], indent: int = 2) -> str:
    """Serialize tables to a JSON document (one object per table)."""
    payload = [
        {
            "name": table.name,
            "title": table.title,
            "columns": list(table.columns),
            "rows": [list(row) for row in table.rows],
            "notes": table.notes,
        }
        for table in tables
    ]
    return json.dumps(payload, indent=indent)


def from_json(text: str) -> List[ExperimentResult]:
    """Inverse of :func:`to_json` (rows become lists of JSON scalars)."""
    try:
        payload = json.loads(text)
    except json.JSONDecodeError as error:
        raise InvalidParameterError(f"invalid experiment JSON: {error}") from None
    tables = []
    for entry in payload:
        table = ExperimentResult(
            name=entry["name"],
            title=entry["title"],
            columns=tuple(entry["columns"]),
            notes=entry.get("notes", ""),
        )
        for row in entry["rows"]:
            table.add_row(*row)
        tables.append(table)
    return tables


def to_csv(table: ExperimentResult) -> str:
    """Serialize one table to CSV (header + raw values)."""
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow(table.columns)
    writer.writerows(table.rows)
    return buffer.getvalue()


def to_markdown(table: ExperimentResult) -> str:
    """Serialize one table to a GitHub-flavored Markdown table."""
    header = list(table.columns)
    lines = [f"### {table.name}: {table.title}", ""]
    lines.append("| " + " | ".join(str(c) for c in header) + " |")
    lines.append("|" + "|".join("---" for _ in header) + "|")
    for row in table.rows:
        lines.append("| " + " | ".join(format_cell(v) for v in row) + " |")
    if table.notes:
        lines.append("")
        lines.append(f"*{table.notes}*")
    return "\n".join(lines)


def to_report(tables: Sequence[ExperimentResult], title: str = "Results") -> str:
    """A Markdown report concatenating every table."""
    parts = [f"# {title}", ""]
    for table in tables:
        parts.append(to_markdown(table))
        parts.append("")
    return "\n".join(parts)
