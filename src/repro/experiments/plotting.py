"""Terminal (ASCII) charts for experiment results.

The evaluation figures of the paper are line charts (latency vs budget,
latency vs collection size, ...) and bar charts (Figure 11(b)).  This
module renders :class:`repro.experiments.tables.ExperimentResult` tables in
those two shapes without any plotting dependency, so `tdp-repro experiment
... --plot` works in any terminal.
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence

from repro.errors import ExperimentError, InvalidParameterError
from repro.experiments.tables import ExperimentResult, format_cell

#: Glyphs assigned to series, in column order.
SERIES_GLYPHS = "*o+x#@%&"


def _as_floats(values: Sequence[object], column: str) -> List[float]:
    floats = []
    for value in values:
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            raise ExperimentError(
                f"column {column!r} holds non-numeric value {value!r}; "
                f"cannot plot it"
            )
        floats.append(float(value))
    return floats


def _scale(value: float, low: float, high: float, steps: int) -> int:
    if high == low:
        return 0
    position = (value - low) / (high - low)
    return min(steps - 1, max(0, round(position * (steps - 1))))


def ascii_line_chart(
    table: ExperimentResult,
    x_column: Optional[str] = None,
    y_columns: Optional[Sequence[str]] = None,
    width: int = 72,
    height: int = 16,
    log_y: bool = False,
) -> str:
    """Render *table* as a multi-series ASCII line (scatter) chart.

    Args:
        table: the experiment table to plot.
        x_column: column for the x axis (default: the first column).
        y_columns: series to plot (default: every other numeric column).
        width, height: plot area size in characters.
        log_y: use a log10 y axis (useful for Figure 14(a)'s explosion).

    Returns:
        The rendered chart, ready to print.
    """
    if width < 8 or height < 4:
        raise InvalidParameterError("chart needs width >= 8 and height >= 4")
    if not table.rows:
        raise ExperimentError(f"{table.name}: nothing to plot (no rows)")
    columns = list(table.columns)
    if x_column is None:
        x_column = columns[0]
    if y_columns is None:
        y_columns = [c for c in columns if c != x_column]
    if not y_columns:
        raise ExperimentError(f"{table.name}: no y columns to plot")
    if len(y_columns) > len(SERIES_GLYPHS):
        raise InvalidParameterError(
            f"at most {len(SERIES_GLYPHS)} series supported"
        )

    xs = _as_floats(table.column(x_column), x_column)
    all_series = [
        (name, _as_floats(table.column(name), name)) for name in y_columns
    ]
    ys_flat = [y for _, series in all_series for y in series]
    if log_y:
        if any(y <= 0 for y in ys_flat):
            raise InvalidParameterError("log_y requires positive values")
        transform = math.log10
    else:
        def transform(v: float) -> float:
            return v

    x_low, x_high = min(xs), max(xs)
    y_low = transform(min(ys_flat))
    y_high = transform(max(ys_flat))

    grid = [[" "] * width for _ in range(height)]
    for glyph, (_, series) in zip(SERIES_GLYPHS, all_series):
        for x, y in zip(xs, series):
            column = _scale(x, x_low, x_high, width)
            row = height - 1 - _scale(transform(y), y_low, y_high, height)
            grid[row][column] = glyph

    y_top = format_cell(max(ys_flat))
    y_bottom = format_cell(min(ys_flat))
    margin = max(len(y_top), len(y_bottom)) + 1
    lines = [f"{table.name}: {table.title}"]
    for row_index, row in enumerate(grid):
        if row_index == 0:
            label = y_top.rjust(margin - 1)
        elif row_index == height - 1:
            label = y_bottom.rjust(margin - 1)
        else:
            label = " " * (margin - 1)
        lines.append(f"{label}|{''.join(row)}")
    lines.append(" " * (margin - 1) + "+" + "-" * width)
    x_left = format_cell(x_low)
    x_right = format_cell(x_high)
    pad = max(1, width - len(x_left) - len(x_right))
    lines.append(" " * margin + x_left + " " * pad + x_right)
    lines.append(
        " " * margin
        + f"x: {x_column}"
        + ("   [log y]" if log_y else "")
    )
    legend = "  ".join(
        f"{glyph}={name}" for glyph, (name, _) in zip(SERIES_GLYPHS, all_series)
    )
    lines.append(" " * margin + legend)
    return "\n".join(lines)


def ascii_bar_chart(
    table: ExperimentResult,
    label_column: Optional[str] = None,
    value_columns: Optional[Sequence[str]] = None,
    width: int = 50,
) -> str:
    """Render *table* as horizontal bars (one group per row).

    Figure 11(b) style: one label per row, one bar per value column.
    """
    if width < 5:
        raise InvalidParameterError("chart needs width >= 5")
    if not table.rows:
        raise ExperimentError(f"{table.name}: nothing to plot (no rows)")
    columns = list(table.columns)
    if label_column is None:
        label_column = columns[0]
    if value_columns is None:
        value_columns = [
            c
            for c in columns
            if c != label_column
            and all(
                isinstance(v, (int, float)) and not isinstance(v, bool)
                for v in table.column(c)
            )
        ]
    if not value_columns:
        raise ExperimentError(f"{table.name}: no numeric columns to plot")
    labels = [str(v) for v in table.column(label_column)]
    series = [(c, _as_floats(table.column(c), c)) for c in value_columns]
    peak = max(max(values) for _, values in series)
    if peak <= 0:
        raise InvalidParameterError("bar chart requires a positive maximum")
    label_width = max(
        [len(label) for label in labels]
        + [len(name) for name in value_columns]
    )
    lines = [f"{table.name}: {table.title}"]
    for row_index, label in enumerate(labels):
        lines.append(label)
        for name, values in series:
            value = values[row_index]
            bar = "#" * max(0, round(width * value / peak))
            if value > 0 and not bar:
                bar = "#"
            lines.append(
                f"  {name.rjust(label_width)} |{bar} {format_cell(value)}"
            )
    return "\n".join(lines)


def chart_for(table: ExperimentResult, width: int = 72) -> str:
    """Pick a sensible chart shape for a known experiment table.

    Bar chart for the per-allocator Figure 11(b); log-y line chart for the
    exploding Figure 14(a); plain line chart otherwise.  Tables with a
    non-numeric first column fall back to bars, and tables with nothing
    numeric at all (e.g. verdict tables) fall back to the plain text table
    so the CLI ``--plot`` path never fails.
    """
    try:
        return _chart_for(table, width)
    except ExperimentError:
        return f"{table.name}: (not chartable)\n{table.to_text()}"


def _chart_for(table: ExperimentResult, width: int) -> str:
    if table.name == "fig11b":
        return ascii_bar_chart(
            table,
            value_columns=["real time (s)", "estimated time (s)"],
            width=min(width, 50),
        )
    first = table.column(list(table.columns)[0])
    numeric_x = all(
        isinstance(v, (int, float)) and not isinstance(v, bool) for v in first
    )
    if not numeric_x:
        return ascii_bar_chart(table, width=min(width, 50))
    numeric_columns = [
        c
        for c in list(table.columns)[1:]
        if all(
            isinstance(v, (int, float)) and not isinstance(v, bool)
            for v in table.column(c)
        )
    ]
    log_y = table.name == "fig14a"
    return ascii_line_chart(
        table, y_columns=numeric_columns, width=width, log_y=log_y
    )
