"""Experiment registry and batch runner."""

from __future__ import annotations

import logging
from typing import Callable, Dict, List

from repro.errors import ExperimentError
from repro.obs.tracer import timed

logger = logging.getLogger(__name__)
from repro.experiments import (
    fig11a,
    fig11b,
    fig12,
    fig13,
    fig14,
    fig15,
    findings68,
)
from repro.experiments.config import ExperimentScale, FULL
from repro.experiments.tables import ExperimentResult

_EXPERIMENTS: Dict[str, Callable[[ExperimentScale], List[ExperimentResult]]] = {
    "fig11a": fig11a.run,
    "fig11b": fig11b.run,
    "fig12": fig12.run,
    "fig13": fig13.run,
    "fig14": fig14.run,
    "fig15": fig15.run,
    "findings68": findings68.run,
}


def available_experiments() -> List[str]:
    """Names of all runnable experiments."""
    return sorted(_EXPERIMENTS)


def run_experiment(
    name: str, scale: ExperimentScale = FULL
) -> List[ExperimentResult]:
    """Run one experiment by name and return its result tables."""
    try:
        runner = _EXPERIMENTS[name]
    except KeyError:
        raise ExperimentError(
            f"unknown experiment {name!r}; available: {available_experiments()}"
        ) from None
    logger.debug("running experiment %s at scale %s", name, scale.name)
    with timed(f"experiment.{name}") as span:
        tables = runner(scale)
    logger.debug("experiment %s finished in %.2f s", name, span.seconds)
    return tables


def run_all(scale: ExperimentScale = FULL) -> List[ExperimentResult]:
    """Run the full Section 6 evaluation and return every table."""
    results: List[ExperimentResult] = []
    for name in available_experiments():
        results.extend(run_experiment(name, scale))
    return results
