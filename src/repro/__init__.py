"""repro — a reproduction of "tDP: An Optimal-Latency Budget Allocation
Strategy for Crowdsourced MAXIMUM Operations" (Verroios, Lofgren,
Garcia-Molina; SIGMOD 2015).

The package provides:

* :mod:`repro.core` — the tDP optimal budget allocator, the Q function,
  latency-function models, and the HE/HF/uHE/uHF baselines.
* :mod:`repro.graphs` — answer DAGs, remaining-candidate sets, tournament
  graphs, and the maxRC/maxIND machinery of Section 4.
* :mod:`repro.selection` — question-selection algorithms (Tournament
  formation, SPREAD, COMPLETE, CT25) and the Appendix B scoring function.
* :mod:`repro.crowd` — a simulated crowdsourcing platform (worker pool,
  error models) and a Reliable Worker Layer.
* :mod:`repro.engine` — the crowdsourced MAX operator that ties allocation,
  selection and the platform together.
* :mod:`repro.analysis` — theory utilities (expected remaining candidates,
  linear extensions, brute-force optimal allocations).
* :mod:`repro.experiments` — runnable reproductions of every figure in the
  paper's evaluation (Section 6).
* :mod:`repro.obs` — observability: structured run tracing, a process-wide
  metrics registry, and profiling spans (see ``docs/observability.md``).

The package logs under the ``repro`` logger hierarchy with a
:class:`logging.NullHandler` attached, per library convention: nothing is
printed unless the application configures logging (the CLI's ``--verbose``
flag does exactly that).
"""

import logging as _logging

from repro.core import (
    Allocation,
    ExpectedCaseAllocator,
    HeavyEnd,
    HeavyFront,
    LatencyFunction,
    LinearLatency,
    MemoizedTDPAllocator,
    PiecewiseLinearLatency,
    PowerLawLatency,
    TabulatedLatency,
    TDPAllocator,
    UniformHeavyEnd,
    UniformHeavyFront,
    allocator_by_name,
    available_allocators,
    fit_linear_latency,
    min_feasible_budget,
    tournament_questions,
    tournament_sizes,
)
from repro.errors import (
    InconsistentAnswersError,
    InfeasibleBudgetError,
    InvalidParameterError,
    PlatformError,
    ReproError,
)

# Library logging convention: a NullHandler on the package logger, so
# nothing is printed unless the application opts in (`--verbose` does).
_logging.getLogger("repro").addHandler(_logging.NullHandler())

__version__ = "1.0.0"

__all__ = [
    "Allocation",
    "TDPAllocator",
    "MemoizedTDPAllocator",
    "ExpectedCaseAllocator",
    "HeavyEnd",
    "HeavyFront",
    "UniformHeavyEnd",
    "UniformHeavyFront",
    "LatencyFunction",
    "LinearLatency",
    "PowerLawLatency",
    "PiecewiseLinearLatency",
    "TabulatedLatency",
    "fit_linear_latency",
    "tournament_questions",
    "tournament_sizes",
    "min_feasible_budget",
    "allocator_by_name",
    "available_allocators",
    "ReproError",
    "InvalidParameterError",
    "InfeasibleBudgetError",
    "InconsistentAnswersError",
    "PlatformError",
    "__version__",
]
