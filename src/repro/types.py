"""Shared value types and type aliases.

Elements of the input collection are represented as integers ``0..n-1``.
The *identity* of an element carries no order information: the true order is
held separately by :class:`repro.crowd.ground_truth.GroundTruth`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

#: An element of the input collection.
Element = int

#: An unordered pairwise comparison question between two elements.
#: By convention questions are normalized so that ``question[0] < question[1]``.
Question = Tuple[Element, Element]


def normalize_question(a: Element, b: Element) -> Question:
    """Return the canonical ``(min, max)`` form of a question between *a*, *b*.

    Raises:
        ValueError: if ``a == b`` (an element cannot be compared to itself).
    """
    if a == b:
        raise ValueError(f"cannot form a comparison question between {a} and itself")
    return (a, b) if a < b else (b, a)


@dataclass(frozen=True)
class Answer:
    """The resolved outcome of one pairwise comparison.

    Attributes:
        winner: the element judged greater.
        loser: the element judged smaller.
    """

    winner: Element
    loser: Element

    def __post_init__(self) -> None:
        if self.winner == self.loser:
            raise ValueError("an answer must involve two distinct elements")

    @property
    def question(self) -> Question:
        """The canonical question this answer resolves."""
        return normalize_question(self.winner, self.loser)
