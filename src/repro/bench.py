"""Benchmark regression artifacts and baseline comparison.

Every benchmark run (``pytest benchmarks/``) emits one
``BENCH_<name>.json`` artifact per bench — wall time, scale preset, a
compacted metrics snapshot and the git revision — written atomically so a
crashed run never leaves a torn artifact.  ``tdp-repro bench-check
BASELINE CURRENT`` then compares two sets of artifacts and fails on
wall-clock regressions beyond a threshold; CI runs it warn-only against
the committed ``benchmarks/baseline.json`` so drift is visible in every
run without flaking the build on shared-runner noise.

Both sides of a comparison accept either shape:

* a *combined* baseline file ``{"schema": 1, "benches": {name:
  {"wall_seconds": ...}}}`` (what gets committed);
* a directory of per-bench ``BENCH_*.json`` artifacts (what a run
  emits).

``tdp-repro bench-history`` appends each run's artifact set to an
append-only JSONL history (``benchmarks/history.jsonl``) and renders
per-bench wall-time trends as sparklines next to the delta against the
committed baseline, so slow drift that never crosses the per-run
regression threshold is still visible.
"""

from __future__ import annotations

import dataclasses
import fnmatch
import json
import subprocess
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

from repro.errors import InvalidParameterError

#: Bumped on incompatible artifact layout changes.
BENCH_SCHEMA_VERSION = 1

#: Default relative regression threshold (current > baseline * (1 + t)).
DEFAULT_THRESHOLD = 0.25


def current_git_sha(repo_root: Optional[Union[str, Path]] = None) -> Optional[str]:
    """The current git revision, or ``None`` outside a repo / without git."""
    try:
        completed = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=str(repo_root) if repo_root is not None else None,
            capture_output=True,
            text=True,
            timeout=10,
        )
    except (OSError, subprocess.SubprocessError):
        return None
    if completed.returncode != 0:
        return None
    sha = completed.stdout.strip()
    return sha or None


def compact_snapshot(snapshot: Dict[str, Any]) -> Dict[str, Any]:
    """Shrink a metrics snapshot for embedding in an artifact.

    Histogram sample lists (up to thousands of floats each) are replaced
    by their summary statistics and percentiles; counters and gauges pass
    through unchanged.
    """
    from repro.obs.metrics import snapshot_percentile

    compact: Dict[str, Any] = {}
    for name, state in snapshot.items():
        if state.get("type") != "histogram":
            compact[name] = dict(state)
            continue
        compact[name] = {
            "type": "histogram",
            "count": state["count"],
            "total": state["total"],
            "min": state["min"],
            "max": state["max"],
            "truncated": state.get("truncated", False),
            "p50": (
                snapshot_percentile(state, 50) if state["count"] else None
            ),
            "p95": (
                snapshot_percentile(state, 95) if state["count"] else None
            ),
        }
    return compact


def make_artifact(
    name: str,
    wall_seconds: float,
    scale: str,
    metrics: Optional[Dict[str, Any]] = None,
    git_sha: Optional[str] = None,
) -> Dict[str, Any]:
    """Build one bench artifact payload (the ``BENCH_<name>.json`` body)."""
    if wall_seconds < 0:
        raise InvalidParameterError(
            f"wall_seconds must be >= 0, got {wall_seconds}"
        )
    return {
        "kind": "bench_artifact",
        "schema": BENCH_SCHEMA_VERSION,
        "bench": name,
        "wall_seconds": float(wall_seconds),
        "scale": scale,
        "git_sha": git_sha,
        "metrics": compact_snapshot(metrics) if metrics is not None else None,
    }


def write_artifact(artifact: Dict[str, Any], directory: Union[str, Path]) -> Path:
    """Atomically write *artifact* as ``BENCH_<bench>.json`` in *directory*."""
    from repro.persistence import save_text

    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / f"BENCH_{artifact['bench']}.json"
    save_text(json.dumps(artifact, indent=2), path)
    return path


# ----------------------------------------------------------------------
# Loading either shape
# ----------------------------------------------------------------------
def _load_json(path: Path) -> Dict[str, Any]:
    try:
        payload = json.loads(path.read_text(encoding="utf-8"))
    except FileNotFoundError:
        raise InvalidParameterError(f"no such bench file: {path}") from None
    except json.JSONDecodeError as error:
        raise InvalidParameterError(f"invalid JSON in {path}: {error}") from None
    if not isinstance(payload, dict):
        raise InvalidParameterError(f"{path} is not a JSON object")
    return payload


def load_bench_times(source: Union[str, Path]) -> Dict[str, float]:
    """Bench name → wall seconds from any accepted source shape.

    Raises:
        InvalidParameterError: missing/invalid file, a directory with no
            ``BENCH_*.json`` artifacts, or an unrecognized payload.
    """
    source = Path(source)
    if source.is_dir():
        times: Dict[str, float] = {}
        for path in sorted(source.glob("BENCH_*.json")):
            artifact = _load_json(path)
            times[str(artifact.get("bench", path.stem))] = float(
                artifact["wall_seconds"]
            )
        if not times:
            raise InvalidParameterError(
                f"{source} contains no BENCH_*.json artifacts"
            )
        return times
    payload = _load_json(source)
    if payload.get("kind") == "bench_artifact":
        return {str(payload["bench"]): float(payload["wall_seconds"])}
    benches = payload.get("benches")
    if isinstance(benches, dict):
        return {
            str(name): float(entry["wall_seconds"])
            for name, entry in benches.items()
        }
    raise InvalidParameterError(
        f"{source} is neither a bench artifact nor a combined baseline"
    )


def combine_times(times: Dict[str, float]) -> Dict[str, Any]:
    """The combined-baseline payload for a name → seconds mapping."""
    return {
        "schema": BENCH_SCHEMA_VERSION,
        "benches": {
            name: {"wall_seconds": float(seconds)}
            for name, seconds in sorted(times.items())
        },
    }


# ----------------------------------------------------------------------
# Comparison
# ----------------------------------------------------------------------
@dataclasses.dataclass(frozen=True)
class BenchDelta:
    """One bench's baseline-vs-current verdict."""

    name: str
    baseline_seconds: Optional[float]
    current_seconds: Optional[float]
    #: "ok" | "regression" | "new" (no baseline) | "missing" (not rerun)
    status: str

    @property
    def ratio(self) -> Optional[float]:
        if not self.baseline_seconds or self.current_seconds is None:
            return None
        return self.current_seconds / self.baseline_seconds


@dataclasses.dataclass(frozen=True)
class BenchComparison:
    """Outcome of comparing a current run against a baseline."""

    deltas: tuple
    threshold: float

    @property
    def regressions(self) -> List[BenchDelta]:
        return [d for d in self.deltas if d.status == "regression"]

    @property
    def ok(self) -> bool:
        return not self.regressions

    def render(self) -> str:
        lines = [
            f"{'bench':<40} {'baseline':>10} {'current':>10} "
            f"{'ratio':>7}  status"
        ]
        for d in self.deltas:
            base = "-" if d.baseline_seconds is None else f"{d.baseline_seconds:.3f}s"
            cur = "-" if d.current_seconds is None else f"{d.current_seconds:.3f}s"
            ratio = "-" if d.ratio is None else f"{d.ratio:.2f}x"
            lines.append(
                f"{d.name:<40} {base:>10} {cur:>10} {ratio:>7}  {d.status}"
            )
        verdict = (
            "OK: no regressions beyond "
            if self.ok
            else f"FAIL: {len(self.regressions)} regression(s) beyond "
        )
        lines.append(
            f"{verdict}{100 * self.threshold:.0f}% of baseline"
        )
        return "\n".join(lines)


def filter_times(
    times: Dict[str, float], patterns: List[str]
) -> Dict[str, float]:
    """Restrict a name → seconds mapping to benches matching *patterns*.

    Patterns are shell-style (``fnmatch``) globs; a bench is kept when
    it matches any of them.  An empty pattern list keeps everything.
    """
    if not patterns:
        return dict(times)
    return {
        name: seconds
        for name, seconds in times.items()
        if any(fnmatch.fnmatchcase(name, pattern) for pattern in patterns)
    }


def compare_times(
    baseline: Dict[str, float],
    current: Dict[str, float],
    threshold: float = DEFAULT_THRESHOLD,
) -> BenchComparison:
    """Flag benches whose wall time grew past ``baseline * (1 + threshold)``.

    Benches present on only one side are reported (``new`` / ``missing``)
    but never count as regressions — adding a bench must not break the
    gate, and a bench that did not run cannot be judged.
    """
    if threshold < 0:
        raise InvalidParameterError(
            f"threshold must be >= 0, got {threshold}"
        )
    deltas = []
    for name in sorted(set(baseline) | set(current)):
        base = baseline.get(name)
        cur = current.get(name)
        if base is None:
            status = "new"
        elif cur is None:
            status = "missing"
        elif base > 0 and cur > base * (1 + threshold):
            status = "regression"
        else:
            status = "ok"
        deltas.append(
            BenchDelta(
                name=name,
                baseline_seconds=base,
                current_seconds=cur,
                status=status,
            )
        )
    return BenchComparison(deltas=tuple(deltas), threshold=threshold)


# ----------------------------------------------------------------------
# History (append-only trend log)
# ----------------------------------------------------------------------
def make_history_entry(
    times: Dict[str, float],
    git_sha: Optional[str] = None,
    timestamp: Optional[str] = None,
) -> Dict[str, Any]:
    """One history line for a run's name → wall-seconds mapping."""
    if not times:
        raise InvalidParameterError("history entry needs at least one bench")
    return {
        "kind": "bench_history",
        "schema": BENCH_SCHEMA_VERSION,
        "git_sha": git_sha,
        "timestamp": timestamp,
        "benches": {
            name: float(seconds) for name, seconds in sorted(times.items())
        },
    }


def append_history(entry: Dict[str, Any], path: Union[str, Path]) -> Path:
    """Append *entry* as one JSONL line to *path* (created if missing)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("a", encoding="utf-8") as handle:
        handle.write(json.dumps(entry, sort_keys=True) + "\n")
    return path


def load_history(path: Union[str, Path]) -> List[Dict[str, Any]]:
    """Parse a history JSONL file, oldest entry first.

    A missing file is an empty history; corrupt lines (a crashed append)
    are skipped rather than fatal — the history is a trend aid, not a
    source of truth.
    """
    path = Path(path)
    if not path.exists():
        return []
    entries: List[Dict[str, Any]] = []
    for line in path.read_text(encoding="utf-8").splitlines():
        line = line.strip()
        if not line:
            continue
        try:
            payload = json.loads(line)
        except json.JSONDecodeError:
            continue
        if isinstance(payload, dict) and isinstance(
            payload.get("benches"), dict
        ):
            entries.append(payload)
    return entries


def render_history(
    entries: List[Dict[str, Any]],
    baseline: Optional[Dict[str, float]] = None,
    limit: int = 20,
    threshold: float = DEFAULT_THRESHOLD,
) -> str:
    """Per-bench trend table over the last *limit* history entries.

    Each row shows a sparkline of the bench's wall time across the
    window, the latest time, and the delta against *baseline* (when the
    bench has a baseline entry).
    """
    from repro.obs.dashboard import sparkline

    if limit < 1:
        raise InvalidParameterError(f"limit must be >= 1, got {limit}")
    if not entries:
        return "bench history: (empty)"
    window = entries[-limit:]
    names = sorted(window[-1]["benches"])
    lines = [
        f"bench history ({len(window)} run(s), newest last):",
        f"{'bench':<40} {'trend':<{limit}} {'latest':>10} {'vs baseline':>12}",
    ]
    baseline = baseline or {}
    for name in names:
        series = [
            float(e["benches"][name]) for e in window if name in e["benches"]
        ]
        latest = series[-1]
        base = baseline.get(name)
        if base:
            ratio = latest / base
            verdict = f"{ratio:.2f}x"
            if ratio > 1 + threshold:
                verdict += " !"
        else:
            verdict = "-"
        lines.append(
            f"{name:<40} {sparkline(series, limit):<{limit}} "
            f"{latest:>9.3f}s {verdict:>12}"
        )
    return "\n".join(lines)
