"""Answer DAGs, remaining-candidate sets and tournament question graphs."""

from repro.graphs.answer_graph import AnswerGraph
from repro.graphs.candidates import (
    expected_remaining_candidates,
    max_independent_set,
    max_remaining_candidates,
    worst_case_answers,
)
from repro.graphs.tournaments import (
    form_tournaments,
    tournament_question_graph,
)

__all__ = [
    "AnswerGraph",
    "max_independent_set",
    "max_remaining_candidates",
    "expected_remaining_candidates",
    "worst_case_answers",
    "form_tournaments",
    "tournament_question_graph",
]
