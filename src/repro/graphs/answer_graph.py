"""The DAG representation of comparison answers (Section 4, Figure 7).

Following the paper's convention, a directed edge from node ``b`` to node
``a`` records the answer ``a > b`` — edges point from loser to winner.  The
*Remaining Candidates* (RC) set of the DAG is then the set of nodes with no
outgoing edge (Definition 5): the elements that have not lost any comparison
and are still candidates for the MAX.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, Iterator, List, Optional, Set, Tuple

from repro.errors import InconsistentAnswersError, InvalidParameterError
from repro.types import Answer, Element, Question, normalize_question


class AnswerGraph:
    """Mutable DAG of resolved comparison answers over a fixed element set.

    The graph enforces *direct* consistency on every insert (the same pair
    cannot be answered both ways); full acyclicity — which the Reliable
    Worker Layer guarantees for its output — can be checked explicitly with
    :meth:`validate_acyclic`.
    """

    def __init__(self, elements: Iterable[Element]) -> None:
        self._elements: FrozenSet[Element] = frozenset(elements)
        if not self._elements:
            raise InvalidParameterError("an answer graph needs at least one element")
        #: winners of each element: x -> set of elements that beat x
        #: (the out-neighbors of x in the paper's loser -> winner orientation).
        self._beaten_by: Dict[Element, Set[Element]] = {
            e: set() for e in self._elements
        }
        #: losers of each element: x -> set of elements x beat.
        self._beat: Dict[Element, Set[Element]] = {e: set() for e in self._elements}
        self._n_answers = 0

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def record(self, answer: Answer) -> None:
        """Add one answer.  Duplicate identical answers are idempotent.

        Raises:
            InvalidParameterError: if an element is unknown.
            InconsistentAnswersError: if the same pair was previously
                answered in the opposite direction.
        """
        winner, loser = answer.winner, answer.loser
        if winner not in self._elements or loser not in self._elements:
            raise InvalidParameterError(
                f"answer {answer} involves elements outside the collection"
            )
        if winner in self._beat[loser]:
            raise InconsistentAnswersError(
                f"pair ({winner}, {loser}) already answered in the opposite "
                f"direction; the Reliable Worker Layer must resolve conflicts"
            )
        if loser in self._beat[winner]:
            return  # idempotent repeat
        self._beat[winner].add(loser)
        self._beaten_by[loser].add(winner)
        self._n_answers += 1

    def record_all(self, answers: Iterable[Answer]) -> None:
        """Record a batch of answers (see :meth:`record`)."""
        for answer in answers:
            self.record(answer)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def elements(self) -> FrozenSet[Element]:
        """The full element collection the graph was created over."""
        return self._elements

    @property
    def n_answers(self) -> int:
        """Number of distinct answered pairs."""
        return self._n_answers

    def remaining_candidates(self) -> Set[Element]:
        """The RC set (Definition 5): elements with no outgoing edges.

        These are exactly the elements that never lost a comparison, hence
        the surviving candidates for the MAX.
        """
        return {e for e, winners in self._beaten_by.items() if not winners}

    def winners_over(self, element: Element) -> FrozenSet[Element]:
        """Elements that directly beat *element*."""
        return frozenset(self._beaten_by[element])

    def losers_to(self, element: Element) -> FrozenSet[Element]:
        """Elements that *element* directly beat."""
        return frozenset(self._beat[element])

    def direct_result(self, a: Element, b: Element) -> Optional[Element]:
        """The recorded winner of the pair ``(a, b)``, or ``None`` if unasked."""
        if b in self._beat[a]:
            return a
        if a in self._beat[b]:
            return b
        return None

    def answered_questions(self) -> Set[Question]:
        """All distinct pairs with a recorded answer, in canonical form."""
        return {
            normalize_question(winner, loser)
            for winner, losers in self._beat.items()
            for loser in losers
        }

    def iter_answers(self) -> Iterator[Answer]:
        """Iterate all recorded answers."""
        for winner, losers in self._beat.items():
            for loser in losers:
                yield Answer(winner=winner, loser=loser)

    # ------------------------------------------------------------------
    # Structure
    # ------------------------------------------------------------------
    def topological_order(self) -> List[Element]:
        """Elements ordered losers-first (a topological order of the DAG).

        Raises:
            InconsistentAnswersError: if the recorded answers contain a
                preference cycle.
        """
        # Kahn's algorithm on the loser -> winner orientation: sources are
        # elements whose every comparison was a loss... more precisely,
        # elements with no *incoming* edges, i.e. that never beat anyone.
        in_degree = {e: len(self._beat[e]) for e in self._elements}
        frontier = [e for e, d in in_degree.items() if d == 0]
        order: List[Element] = []
        while frontier:
            node = frontier.pop()
            order.append(node)
            for winner in self._beaten_by[node]:
                in_degree[winner] -= 1
                if in_degree[winner] == 0:
                    frontier.append(winner)
        if len(order) != len(self._elements):
            raise InconsistentAnswersError(
                "the answer graph contains a preference cycle"
            )
        return order

    def validate_acyclic(self) -> None:
        """Raise :class:`InconsistentAnswersError` on any preference cycle."""
        self.topological_order()

    def transitive_wins(self) -> Dict[Element, int]:
        """For each element, how many elements it beats implicitly or
        explicitly (the size of its descendant set in the win relation).

        Used by the Appendix B.2 scoring function to order energy transfers.
        """
        order = self.topological_order()  # losers before winners
        # Descendant sets as integer bitmasks for speed: beaten(v) =
        # union over direct losers u of ({u} | beaten(u)).
        index = {element: i for i, element in enumerate(order)}
        beaten_mask: Dict[Element, int] = {}
        for element in order:
            mask = 0
            for loser in self._beat[element]:
                mask |= beaten_mask[loser] | (1 << index[loser])
            beaten_mask[element] = mask
        return {e: bin(mask).count("1") for e, mask in beaten_mask.items()}

    def restricted_to(self, elements: Iterable[Element]) -> "AnswerGraph":
        """A new graph containing only *elements* and the answers among them."""
        keep = set(elements)
        unknown = keep - self._elements
        if unknown:
            raise InvalidParameterError(f"unknown elements: {sorted(unknown)}")
        sub = AnswerGraph(keep)
        for winner, losers in self._beat.items():
            if winner not in keep:
                continue
            for loser in losers:
                if loser in keep:
                    sub.record(Answer(winner=winner, loser=loser))
        return sub

    def __len__(self) -> int:
        return len(self._elements)

    def __repr__(self) -> str:
        return (
            f"AnswerGraph(|elements|={len(self._elements)}, "
            f"answers={self._n_answers}, "
            f"|RC|={len(self.remaining_candidates())})"
        )


def undirected_question_graph(
    elements: Iterable[Element], questions: Iterable[Question]
) -> Tuple[List[Element], List[Question]]:
    """Normalize a question set into (nodes, canonical unique edges).

    Convenience used by the maxRC machinery, which reasons about the
    *undirected* graph of asked questions.
    """
    nodes = sorted(set(elements))
    node_set = set(nodes)
    edges = set()
    for a, b in questions:
        if a not in node_set or b not in node_set:
            raise InvalidParameterError(
                f"question ({a}, {b}) references elements outside the graph"
            )
        edges.add(normalize_question(a, b))
    return nodes, sorted(edges)
