"""Remaining-candidate analysis: maxRC, maxIND and expected RC size.

Implements the graph-theoretic machinery of Section 4 and Appendix A:

* ``maxRC(G)`` — the worst-case number of candidates that can survive when
  the questions of the undirected graph ``G`` are asked (Definition 6).
  By Theorem 2 this equals the maximum independent set of ``G``, which is
  how we compute it.
* :func:`worst_case_answers` — the Lemma 2 construction: a concrete answer
  orientation under which a given independent set survives in full.
* ``E[R]`` — the expected RC size under a uniform history (Lemma 4):
  ``sum_v 1 / (d_v + 1)``.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence, Set, Tuple

from repro.errors import InvalidParameterError
from repro.types import Answer, Element, Question, normalize_question


def _adjacency(
    elements: Iterable[Element], questions: Iterable[Question]
) -> Dict[Element, Set[Element]]:
    adjacency: Dict[Element, Set[Element]] = {e: set() for e in elements}
    if not adjacency:
        raise InvalidParameterError("need at least one element")
    for a, b in questions:
        if a not in adjacency or b not in adjacency:
            raise InvalidParameterError(
                f"question ({a}, {b}) references elements outside the graph"
            )
        if a == b:
            raise InvalidParameterError(f"self-comparison ({a}, {b}) is invalid")
        adjacency[a].add(b)
        adjacency[b].add(a)
    return adjacency


def max_independent_set(
    elements: Iterable[Element], questions: Iterable[Question]
) -> Set[Element]:
    """An exact maximum independent set of the undirected question graph.

    Uses a branch-and-bound recursion (branch on a max-degree vertex:
    either exclude it, or include it and drop its neighborhood).  Isolated
    vertices are always included.  Exponential in the worst case — intended
    for analysis and tests, not for the inner loop of selectors.
    """
    adjacency = _adjacency(elements, questions)

    def solve(active: Set[Element]) -> Set[Element]:
        # Strip vertices of degree <= 1 greedily: an isolated vertex always
        # joins the MIS; a degree-1 vertex can always join it (keeping the
        # vertex is never worse than keeping its single neighbor).
        active = set(active)
        chosen: Set[Element] = set()
        while True:
            degree_one = None
            changed = False
            for v in active:
                neighbors = adjacency[v] & active
                if not neighbors:
                    chosen.add(v)
                    active.remove(v)
                    changed = True
                    break
                if len(neighbors) == 1:
                    degree_one = v
                    break
            if degree_one is not None:
                neighbor = next(iter(adjacency[degree_one] & active))
                chosen.add(degree_one)
                active.discard(degree_one)
                active.discard(neighbor)
                continue
            if not changed:
                break
        if not active:
            return chosen
        pivot = max(active, key=lambda v: len(adjacency[v] & active))
        # Branch 1: exclude the pivot.
        without = solve(active - {pivot})
        # Branch 2: include the pivot, excluding its whole neighborhood.
        with_pivot = {pivot} | solve(active - {pivot} - adjacency[pivot])
        best = with_pivot if len(with_pivot) > len(without) else without
        return chosen | best

    return solve(set(adjacency))


def max_remaining_candidates(
    elements: Iterable[Element], questions: Iterable[Question]
) -> Set[Element]:
    """A maxRC set of the question graph (Definition 6).

    By Theorem 2 a node set is a maxRC set if and only if it is a maximum
    independent set, so this simply delegates to :func:`max_independent_set`.
    """
    return max_independent_set(elements, questions)


def worst_case_answers(
    elements: Sequence[Element],
    questions: Iterable[Question],
    surviving: Iterable[Element],
) -> List[Answer]:
    """Orient every question so that all of *surviving* survive (Lemma 2).

    Constructs a permutation that ranks the surviving (independent) set on
    top and orients each question edge toward the higher-ranked endpoint.
    The returned answers form a DAG whose RC set contains *surviving*.

    Raises:
        InvalidParameterError: if *surviving* is not an independent set of
            the question graph (then no orientation can keep all of them).
    """
    survivors = set(surviving)
    ranked = list(survivors) + [e for e in elements if e not in survivors]
    rank = {element: position for position, element in enumerate(ranked)}
    answers = []
    for a, b in questions:
        edge = normalize_question(a, b)
        if edge[0] in survivors and edge[1] in survivors:
            raise InvalidParameterError(
                f"{sorted(survivors)} is not independent: edge {edge} "
                f"connects two of its members"
            )
        winner, loser = (edge[0], edge[1]) if rank[edge[0]] < rank[edge[1]] else (
            edge[1],
            edge[0],
        )
        answers.append(Answer(winner=winner, loser=loser))
    return answers


def expected_remaining_candidates(
    elements: Iterable[Element], questions: Iterable[Question]
) -> float:
    """``E[R]`` of the question graph under a uniform history (Lemma 4).

    Under a uniform history the probability that an element with degree
    ``d`` wins all of its comparisons is ``1 / (d + 1)``, so by linearity of
    expectation ``E[R] = sum_v 1 / (d_v + 1)``.
    """
    adjacency = _adjacency(elements, questions)
    return sum(1.0 / (len(neighbors) + 1) for neighbors in adjacency.values())


def degree_sequence(
    elements: Iterable[Element], questions: Iterable[Question]
) -> Tuple[int, ...]:
    """Sorted (descending) degree sequence of the question graph."""
    adjacency = _adjacency(elements, questions)
    return tuple(sorted((len(n) for n in adjacency.values()), reverse=True))
