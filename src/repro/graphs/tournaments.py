"""Constructing concrete tournament graphs ``G_T(c_prev, c_next)``.

The core modules reason about tournament *counts*; this module materializes
the actual cliques over concrete elements, with the random assignment of
elements to tournaments that the paper prescribes (Section 2.1: "we assume a
random assignment of the advancing elements to the tournaments").
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from repro.core.questions import tournament_sizes
from repro.errors import InvalidParameterError
from repro.types import Element, Question, normalize_question


def form_tournaments(
    elements: Sequence[Element],
    n_tournaments: int,
    rng: np.random.Generator,
) -> List[List[Element]]:
    """Randomly partition *elements* into ``n_tournaments`` near-equal groups.

    Group sizes follow Definition 1: ``len(elements) mod n_tournaments``
    groups of the ceiling size, the rest of the floor size.

    Args:
        elements: the candidate elements to partition.
        n_tournaments: number of tournaments (``1 <= n <= len(elements)``).
        rng: randomness source for the assignment.

    Returns:
        The list of tournaments (each a list of elements).
    """
    if not elements:
        raise InvalidParameterError("cannot form tournaments over no elements")
    sizes = tournament_sizes(len(elements), n_tournaments)
    shuffled = list(elements)
    rng.shuffle(shuffled)
    groups: List[List[Element]] = []
    start = 0
    for size in sizes:
        groups.append(shuffled[start : start + size])
        start += size
    return groups


def tournament_question_graph(groups: Sequence[Sequence[Element]]) -> List[Question]:
    """All intra-tournament pairs: the edges of the tournament graph.

    Each group contributes its complete clique, matching Definition 2's
    question count ``Q``.
    """
    questions: List[Question] = []
    for group in groups:
        members = list(group)
        for i, a in enumerate(members):
            for b in members[i + 1 :]:
                questions.append(normalize_question(a, b))
    return questions
