"""Command-line interface: ``tdp-repro`` (or ``python -m repro``).

Subcommands:

* ``allocate`` — compute a budget allocation for given parameters.
* ``solve`` — run the crowdsourced MAX end to end on a synthetic collection.
* ``serve`` — run a concurrent multi-query workload on one shared platform
  and print the service report (scheduler, plan cache, admission control).
* ``chaos`` — kill a journaled ``serve`` run at chosen tick boundaries,
  recover each time and verify the reports are bit-identical.
* ``top`` — dashboard view of a journaled ``serve`` run: replay a
  finished journal, or ``--follow`` one that is still being written.
* ``metrics-export`` — render a saved metrics snapshot (from
  ``--metrics-json``) in the OpenMetrics/Prometheus text format.
* ``bench-check`` — compare benchmark ``BENCH_*.json`` artifacts against
  a baseline and flag wall-clock regressions.
* ``experiment`` — reproduce a paper figure (``fig11a`` .. ``fig15``).
* ``list`` — show the available allocators, selectors and experiments.

Observability (see ``docs/observability.md``): ``--verbose`` turns on
round-by-round ``repro`` logging; the ``solve``, ``simulate``, ``serve``
and ``experiment`` subcommands accept ``--trace PATH`` (write a JSONL
structured-event trace; add ``--stream-trace`` to write it incrementally
so a killed run keeps a readable prefix), ``--metrics`` (print a
metrics-registry snapshot after the run) and ``--metrics-json PATH``
(save that snapshot as JSON for ``metrics-export``).  ``serve`` further
accepts ``--dashboard`` (live terminal dashboard) and ``--metrics-out
PATH`` (atomically rewrite an OpenMetrics exposition every tick, the
Prometheus textfile-collector shape).

Robustness (see ``docs/robustness.md``): ``solve`` and ``simulate`` accept
``--platform`` (measure latency on the simulated crowd platform),
``--faults PROFILE`` (inject seeded platform faults), ``--retry ATTEMPTS``
and ``--retry-deadline SECONDS`` (re-post unanswered questions with
exponential backoff) and ``--repetition N`` (RWL voting factor).

Crash tolerance: ``serve`` accepts ``--journal PATH`` (write-ahead journal
with ``--snapshot-interval`` ticks between snapshots), ``--resume``
(recover a killed run from its journal and finish it) and ``--breaker``
(circuit breaker around the platform, tuned by ``--breaker-threshold``
and ``--breaker-cooldown``).  ``tdp-repro chaos`` runs the
kill/recover/verify protocol and exits nonzero on any divergence.
"""

from __future__ import annotations

import argparse
import logging
import sys
from pathlib import Path
from typing import Callable, List, Optional

import numpy as np

from repro.core.latency import LinearLatency, PowerLawLatency
from repro.core.registry import allocator_by_name, available_allocators
from repro.crowd.faults import (
    RetryPolicy,
    available_fault_profiles,
    fault_profile_by_name,
)
from repro.crowd.ground_truth import GroundTruth
from repro.engine.max_engine import MaxEngine, OracleAnswerSource
from repro.errors import InvalidParameterError, ReproError
from repro.experiments.config import scale_by_name
from repro.experiments.runner import available_experiments, run_experiment
from repro.selection.registry import available_selectors, selector_by_name
from repro.service.admission import OVERLOAD_POLICIES
from repro.service.policies import available_policies
from repro.service.workload import available_workloads


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="tdp-repro",
        description="Reproduction of the tDP crowdsourced-MAX paper "
        "(SIGMOD 2015)",
    )
    parser.add_argument(
        "-v",
        "--verbose",
        action="store_true",
        help="log round-by-round progress (the 'repro' logger at DEBUG)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    allocate = sub.add_parser(
        "allocate", help="compute a budget allocation into rounds"
    )
    _add_workload_args(allocate)
    allocate.add_argument(
        "--allocator",
        default="tDP",
        help=f"one of {available_allocators()}",
    )
    allocate.add_argument(
        "--deadline",
        type=float,
        default=None,
        help="switch objective: spend the fewest questions finishing within "
        "this many seconds (uses the tDP frontier; ignores --allocator)",
    )

    solve = sub.add_parser(
        "solve", help="run the crowdsourced MAX on a synthetic collection"
    )
    _add_workload_args(solve)
    solve.add_argument("--allocator", default="tDP")
    solve.add_argument(
        "--selector",
        default="Tournament",
        help=f"one of {available_selectors()}",
    )
    solve.add_argument("--seed", type=int, default=0)
    solve.add_argument(
        "--adaptive",
        action="store_true",
        help="re-plan with tDP after every round instead of following a "
        "static allocation (ignores --allocator)",
    )
    _add_fault_args(solve)
    _add_obs_args(solve)

    simulate = sub.add_parser(
        "simulate",
        help="repeat the MAX operation many times and report aggregates",
    )
    _add_workload_args(simulate)
    simulate.add_argument("--allocator", default="tDP")
    simulate.add_argument("--selector", default="Tournament")
    simulate.add_argument("--runs", type=int, default=20)
    simulate.add_argument("--seed", type=int, default=0)
    _add_fault_args(simulate)
    _add_obs_args(simulate)

    serve = sub.add_parser(
        "serve",
        help="run a concurrent multi-query MAX workload on one shared "
        "platform and print the service report",
    )
    serve.add_argument(
        "--workload",
        default="steady",
        help=f"named workload preset: one of {available_workloads()}",
    )
    serve.add_argument(
        "--queries",
        type=int,
        default=None,
        help="override the preset's query count",
    )
    serve.add_argument("--seed", type=int, default=0)
    serve.add_argument(
        "--scheduling",
        default="fair",
        metavar="POLICY",
        help=f"batching policy: one of {available_policies()}",
    )
    serve.add_argument(
        "--max-active",
        type=int,
        default=16,
        help="concurrent running sessions (admission bound)",
    )
    serve.add_argument(
        "--queue-depth",
        type=int,
        default=64,
        help="admitted-but-waiting queries allowed (admission bound)",
    )
    serve.add_argument(
        "--max-inflight",
        type=int,
        default=2000,
        help="distinct questions per shared round (backpressure cap)",
    )
    serve.add_argument(
        "--overload",
        default="defer",
        choices=OVERLOAD_POLICIES,
        help="shed (reject) or defer (queue in the backlog) on overload",
    )
    serve.add_argument(
        "--per-query",
        action="store_true",
        help="also print one report line per query",
    )
    serve.add_argument(
        "--delta", type=float, default=239.0, help="latency intercept (s)"
    )
    serve.add_argument(
        "--alpha", type=float, default=0.06, help="latency slope (s/question)"
    )
    serve.add_argument(
        "--exponent",
        type=float,
        default=1.0,
        help="latency exponent p in L(q) = delta + alpha * q^p",
    )
    serve.add_argument(
        "--repetition",
        type=int,
        default=1,
        help="RWL per-question repetition factor",
    )
    serve.add_argument(
        "--faults",
        default=None,
        metavar="PROFILE",
        help=f"inject platform faults: one of {available_fault_profiles()}",
    )
    serve.add_argument(
        "--retry",
        type=int,
        default=None,
        metavar="ATTEMPTS",
        help="RWL re-post attempts per shared round (default: 3 when "
        "--faults is given, otherwise no retries)",
    )
    serve.add_argument(
        "--retry-deadline",
        type=float,
        default=None,
        metavar="SECONDS",
        help="per-round retry deadline in simulated seconds",
    )
    serve.add_argument(
        "--backends",
        default=None,
        metavar="SPEC",
        help="federate the workload across a fleet of crowd backends: a "
        "preset name (solo, duo, trio, outage-trio) or a JSON spec file "
        "(see docs/backends.md); mutually exclusive with --faults and "
        "--breaker",
    )
    serve.add_argument(
        "--routing",
        default="latency",
        metavar="POLICY",
        help="multi-backend routing policy: latency (default), "
        "least-loaded or weighted-price",
    )
    serve.add_argument(
        "--default-deadline",
        type=float,
        default=None,
        metavar="SECONDS",
        help="enforce an end-to-end latency budget on every query that "
        "does not carry its own deadline: the scheduler replans, "
        "degrades or expires queries to honour it",
    )
    serve.add_argument(
        "--hedge",
        action="store_true",
        help="mirror predicted-slow sub-batches to the next-best backend "
        "(first answer wins, loser counted as hedge waste); requires "
        "--backends",
    )
    serve.add_argument(
        "--hedge-after",
        type=float,
        default=None,
        metavar="SECONDS",
        help="explicit hedge threshold in simulated seconds (default: "
        "derived online from the fleet's p95 sub-round latency)",
    )
    serve.add_argument(
        "--brownout",
        action="store_true",
        help="enable the overload brownout controller: progressively "
        "shed low-priority admissions, reduce repetition and disable "
        "hedging while queue-wait p95 stays over the threshold",
    )
    serve.add_argument(
        "--brownout-threshold",
        type=float,
        default=3600.0,
        metavar="SECONDS",
        help="queue-wait p95 (simulated seconds) above which brownout "
        "escalates one level per tick (default: %(default)s)",
    )
    serve.add_argument(
        "--slo",
        action="store_true",
        help="arm the SLO engine: deadline/success objectives, "
        "multi-window burn-rate alerts, signal thresholds and a flight "
        "recorder (see tdp-repro health / diagnose)",
    )
    serve.add_argument(
        "--slo-bundle-dir",
        default=None,
        metavar="DIR",
        help="snapshot a flight-recorder debug bundle under DIR every "
        "time an alert fires (implies --slo)",
    )
    serve.add_argument(
        "--journal",
        default=None,
        metavar="PATH",
        help="write a crash-recovery write-ahead journal (JSONL) to PATH",
    )
    serve.add_argument(
        "--resume",
        action="store_true",
        help="recover the scheduler from --journal PATH and finish the run "
        "(workload/fault flags are taken from the journal header)",
    )
    serve.add_argument(
        "--snapshot-interval",
        type=int,
        default=5,
        metavar="TICKS",
        help="ticks between full journal snapshots (larger = smaller "
        "journal and less overhead, more replay on recovery; 1 = "
        "snapshot every tick)",
    )
    serve.add_argument(
        "--dashboard",
        action="store_true",
        help="render a terminal dashboard of per-tick scheduler state "
        "(redrawn in place on a TTY; final frame only when piped)",
    )
    serve.add_argument(
        "--metrics-out",
        default=None,
        metavar="PATH",
        help="atomically rewrite PATH with an OpenMetrics exposition of "
        "the metrics registry after every tick",
    )
    _add_breaker_args(serve)
    _add_obs_args(serve)

    top = sub.add_parser(
        "top",
        help="dashboard view of a journaled serve run: replay a finished "
        "journal or --follow a live one",
    )
    top.add_argument(
        "journal", help="scheduler journal (JSONL) written by serve --journal"
    )
    top.add_argument(
        "--follow",
        action="store_true",
        help="poll the journal for new ticks until the run completes",
    )
    top.add_argument(
        "--poll",
        type=float,
        default=0.25,
        metavar="SECONDS",
        help="polling interval while following",
    )
    top.add_argument(
        "--timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="stop following after this long without a completion record",
    )

    health = sub.add_parser(
        "health",
        help="aggregate SLO health of a journaled serve --slo run "
        "(ok/degraded/critical with the alert history)",
    )
    health.add_argument(
        "journal", help="scheduler journal written by serve --slo --journal"
    )
    health.add_argument(
        "--fail-degraded",
        action="store_true",
        help="exit 1 unless the final health state is ok",
    )

    diagnose = sub.add_parser(
        "diagnose",
        help="rebuild a journaled run's flight recorder and snapshot a "
        "debug bundle (ring, state, metrics, manifest)",
    )
    diagnose.add_argument(
        "journal", help="scheduler journal written by serve --slo --journal"
    )
    diagnose.add_argument(
        "--output",
        required=True,
        metavar="DIR",
        help="directory to write the bundle into (created if missing)",
    )

    metrics_export = sub.add_parser(
        "metrics-export",
        help="render a saved metrics snapshot (--metrics-json) as "
        "OpenMetrics text",
    )
    metrics_export.add_argument(
        "snapshot", help="snapshot JSON written by --metrics-json"
    )
    metrics_export.add_argument(
        "--output",
        default=None,
        metavar="PATH",
        help="write the exposition to PATH (atomically) instead of stdout",
    )

    bench_check = sub.add_parser(
        "bench-check",
        help="compare benchmark artifacts against a baseline and flag "
        "wall-clock regressions",
    )
    bench_check.add_argument(
        "baseline",
        help="combined baseline JSON or a directory of BENCH_*.json artifacts",
    )
    bench_check.add_argument(
        "current", help="same accepted shapes as the baseline"
    )
    bench_check.add_argument(
        "--threshold",
        type=float,
        default=0.25,
        help="relative slowdown tolerated before a bench counts as "
        "regressed (0.25 = 25%% over baseline)",
    )
    bench_check.add_argument(
        "--warn-only",
        action="store_true",
        help="print the comparison but always exit 0 (CI smoke mode)",
    )
    bench_check.add_argument(
        "--filter",
        default=None,
        metavar="PAT,PAT",
        help="comma-separated fnmatch patterns; only matching benches "
        "(on both sides) are compared — lets CI gate hard on the "
        "deterministic solver benches while keeping the rest warn-only",
    )

    bench_history = sub.add_parser(
        "bench-history",
        help="append a benchmark run to the trend history and render "
        "per-bench sparklines against the baseline",
    )
    bench_history.add_argument(
        "current",
        help="combined JSON or a directory of BENCH_*.json artifacts",
    )
    bench_history.add_argument(
        "--history",
        default="benchmarks/history.jsonl",
        metavar="PATH",
        help="append-only JSONL trend log (created if missing)",
    )
    bench_history.add_argument(
        "--baseline",
        default="benchmarks/baseline.json",
        metavar="PATH",
        help="combined baseline for the delta column ('-' to skip)",
    )
    bench_history.add_argument(
        "--limit",
        type=int,
        default=20,
        help="history entries shown in each sparkline window",
    )
    bench_history.add_argument(
        "--threshold",
        type=float,
        default=0.25,
        help="relative slowdown that flags the baseline delta with '!'",
    )
    bench_history.add_argument(
        "--no-append",
        action="store_true",
        help="render the existing history only; do not record this run",
    )

    explain = sub.add_parser(
        "explain",
        help="render per-query latency waterfalls (and causal span trees) "
        "from a JSONL trace written with --trace",
    )
    explain.add_argument(
        "query_id",
        nargs="?",
        type=int,
        default=None,
        help="query to explain (default: every query in the trace)",
    )
    explain.add_argument(
        "--trace",
        required=True,
        metavar="PATH",
        help="JSONL trace of a traced serve run",
    )
    explain.add_argument(
        "--tree",
        action="store_true",
        help="also print the causal span tree(s)",
    )

    profile = sub.add_parser(
        "profile",
        help="run the tDP solvers under the work-counter profiler and "
        "print what the dynamic programs actually did",
    )
    _add_workload_args(profile)
    profile.add_argument(
        "--solver",
        default="both",
        choices=("frontier", "memo", "both"),
        help="which MinLatency solver(s) to profile",
    )
    profile.add_argument(
        "--repeat",
        type=int,
        default=1,
        help="solve this many times (plan-cache hit rates need >= 2)",
    )
    _add_obs_args(profile)

    chaos = sub.add_parser(
        "chaos",
        help="crash-test the journaled scheduler: kill at tick boundaries, "
        "recover, verify the reports are bit-identical",
    )
    chaos.add_argument(
        "--scenario",
        default=None,
        metavar="NAME",
        help="run a named scenario (e.g. multibackend-outage) instead of "
        "composing one from the flags below",
    )
    chaos.add_argument(
        "--workload",
        default="smoke",
        help=f"named workload preset: one of {available_workloads()}",
    )
    chaos.add_argument(
        "--queries",
        type=int,
        default=None,
        help="override the preset's query count",
    )
    chaos.add_argument("--seed", type=int, default=0)
    chaos.add_argument(
        "--faults",
        default=None,
        metavar="PROFILE",
        help=f"inject platform faults: one of {available_fault_profiles()}",
    )
    chaos.add_argument(
        "--retry",
        type=int,
        default=None,
        metavar="ATTEMPTS",
        help="RWL re-post attempts per shared round (default: 3 when "
        "--faults is given, otherwise no retries)",
    )
    chaos.add_argument(
        "--snapshot-interval",
        type=int,
        default=1,
        metavar="TICKS",
        help="ticks between full journal snapshots",
    )
    crash_sched = chaos.add_mutually_exclusive_group()
    crash_sched.add_argument(
        "--crash-points",
        default=None,
        metavar="A,B,C",
        help="explicit comma-separated step indices to kill at",
    )
    crash_sched.add_argument(
        "--crashes",
        type=int,
        default=None,
        metavar="N",
        help="N seeded-random crash points (default: 3)",
    )
    crash_sched.add_argument(
        "--sweep",
        action="store_true",
        help="kill at every tick boundary (exhaustive, slow)",
    )
    chaos.add_argument(
        "--journal-dir",
        default=None,
        metavar="DIR",
        help="keep the per-crash journals here (default: a temp directory)",
    )
    _add_breaker_args(chaos)

    experiment = sub.add_parser(
        "experiment", help="reproduce a figure from the paper's evaluation"
    )
    experiment.add_argument(
        "name", help=f"one of {available_experiments()} or 'all'"
    )
    experiment.add_argument(
        "--scale",
        default="full",
        help="'full' mirrors the paper; 'small' finishes in seconds",
    )
    experiment.add_argument(
        "--format",
        dest="output_format",
        default="text",
        choices=("text", "markdown", "json", "csv"),
        help="output format for the result tables",
    )
    experiment.add_argument(
        "--plot",
        action="store_true",
        help="also render each table as an ASCII chart (text format only)",
    )
    experiment.add_argument(
        "--output",
        default=None,
        help="write the results to this file instead of stdout",
    )
    _add_obs_args(experiment)

    sub.add_parser("list", help="show available algorithms and experiments")
    return parser


def _add_fault_args(parser: argparse.ArgumentParser) -> None:
    """Robustness flags (see docs/robustness.md)."""
    parser.add_argument(
        "--platform",
        action="store_true",
        help="run on the simulated crowd platform with *measured* latency "
        "(the Section 6.2 mode) instead of the oracle latency model",
    )
    parser.add_argument(
        "--repetition",
        type=int,
        default=1,
        help="RWL per-question repetition factor (platform mode only)",
    )
    parser.add_argument(
        "--faults",
        default=None,
        metavar="PROFILE",
        help=f"inject platform faults: one of "
        f"{available_fault_profiles()} (implies --platform)",
    )
    parser.add_argument(
        "--retry",
        type=int,
        default=None,
        metavar="ATTEMPTS",
        help="re-post unanswered questions with exponential backoff, up to "
        "ATTEMPTS total posting attempts per round (default: 3 when "
        "--faults is given, otherwise no retries)",
    )
    parser.add_argument(
        "--retry-deadline",
        type=float,
        default=None,
        metavar="SECONDS",
        help="per-round deadline in simulated seconds; a retry that cannot "
        "start before it is abandoned and the round degrades gracefully",
    )


def _add_breaker_args(parser: argparse.ArgumentParser) -> None:
    """Circuit-breaker flags (see docs/robustness.md)."""
    parser.add_argument(
        "--breaker",
        action="store_true",
        help="wrap the platform in a circuit breaker: defer rounds while "
        "the platform looks dead instead of burning retries",
    )
    parser.add_argument(
        "--breaker-threshold",
        type=int,
        default=3,
        metavar="N",
        help="consecutive outages that open the circuit",
    )
    parser.add_argument(
        "--breaker-cooldown",
        type=float,
        default=1800.0,
        metavar="SECONDS",
        help="simulated seconds to wait while open before probing",
    )


def _breaker_config(args: argparse.Namespace):
    """Resolve an optional CircuitBreakerConfig from the flags."""
    if not getattr(args, "breaker", False):
        return None
    from repro.crowd.breaker import CircuitBreakerConfig

    return CircuitBreakerConfig(
        failure_threshold=args.breaker_threshold,
        cooldown_seconds=args.breaker_cooldown,
    )


def _fault_options(args: argparse.Namespace):
    """Resolve (platform_mode, fault_profile, retry_policy) from the flags."""
    fault_profile = (
        fault_profile_by_name(args.faults) if args.faults is not None else None
    )
    attempts = args.retry
    if attempts is not None and attempts < 1:
        raise InvalidParameterError(
            f"--retry must be >= 1 attempt, got {attempts}"
        )
    if attempts is None and fault_profile is not None:
        attempts = 3
    retry_policy = (
        RetryPolicy(max_attempts=attempts, deadline=args.retry_deadline)
        if attempts is not None and attempts > 1
        else None
    )
    platform_mode = (
        args.platform or fault_profile is not None or retry_policy is not None
    )
    return platform_mode, fault_profile, retry_policy


def _add_obs_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--trace",
        default=None,
        metavar="PATH",
        help="write a JSONL structured-event trace of the run to PATH",
    )
    parser.add_argument(
        "--stream-trace",
        action="store_true",
        help="stream --trace to disk during the run instead of exporting "
        "at the end: a killed run keeps a readable trace prefix",
    )
    parser.add_argument(
        "--metrics",
        action="store_true",
        help="print a metrics-registry snapshot after the run",
    )
    parser.add_argument(
        "--metrics-json",
        default=None,
        metavar="PATH",
        help="save the metrics snapshot as JSON (input to metrics-export)",
    )


def _add_workload_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--elements", type=int, default=500, help="collection size c0"
    )
    parser.add_argument(
        "--budget", type=int, default=4000, help="total question budget b"
    )
    parser.add_argument(
        "--delta", type=float, default=239.0, help="latency intercept (s)"
    )
    parser.add_argument(
        "--alpha", type=float, default=0.06, help="latency slope (s/question)"
    )
    parser.add_argument(
        "--exponent",
        type=float,
        default=1.0,
        help="latency exponent p in L(q) = delta + alpha * q^p",
    )


def _latency_from_args(args: argparse.Namespace):
    if args.exponent == 1.0:
        return LinearLatency(args.delta, args.alpha)
    return PowerLawLatency(args.delta, args.alpha, args.exponent)


def _cmd_allocate(args: argparse.Namespace) -> int:
    from repro.core.allocation import Allocation
    from repro.core.tdp import solve_min_cost

    latency = _latency_from_args(args)
    if args.deadline is not None:
        plan = solve_min_cost(
            args.elements, args.deadline, latency, budget=args.budget
        )
        allocation = Allocation.from_element_sequence(
            plan.sequence, "tDP (min-cost)"
        )
        print(f"deadline:           {args.deadline:g} s")
    else:
        allocator = allocator_by_name(args.allocator)
        allocation = allocator.allocate(args.elements, args.budget, latency)
    print(f"allocator:          {allocation.allocator_name}")
    print(f"round budgets:      {allocation.round_budgets}")
    if allocation.element_sequence is not None:
        print(f"candidate sequence: {allocation.element_sequence}")
    print(f"questions used:     {allocation.total_questions} / {args.budget}")
    print(f"predicted latency:  {allocation.predicted_latency(latency):.1f} s")
    return 0


def _cmd_solve(args: argparse.Namespace) -> int:
    from repro.engine.adaptive import AdaptiveMaxEngine

    latency = _latency_from_args(args)
    selector = selector_by_name(args.selector)
    platform_mode, fault_profile, retry_policy = _fault_options(args)
    if platform_mode:
        from repro.engine.simulation import run_once_on_platform

        result = run_once_on_platform(
            args.elements,
            args.budget,
            allocator_by_name(args.allocator),
            selector,
            latency,
            seed=args.seed,
            repetition=args.repetition,
            fault_profile=fault_profile,
            retry_policy=retry_policy,
            adaptive=args.adaptive,
        )
        profile_name = args.faults if args.faults is not None else "none"
        retries = (
            f"retry x{retry_policy.max_attempts}" if retry_policy else "no retries"
        )
        print(
            f"platform mode: measured latency, faults={profile_name}, "
            f"{retries}, repetition {args.repetition}"
        )
        for record in result.records:
            print(
                f"  round {record.round_index}: {record.candidates_before} -> "
                f"{record.candidates_after} candidates, "
                f"{record.questions_posted} questions, {record.latency:.1f} s"
            )
        print(result.summary())
        return 0
    rng = np.random.default_rng(args.seed)
    truth = GroundTruth.random(args.elements, rng)
    if args.adaptive:
        engine = AdaptiveMaxEngine(
            selector, OracleAnswerSource(truth, latency), latency, rng
        )
        result = engine.run(truth, args.budget)
        print("allocation: adaptive (re-planned every round)")
    else:
        allocator = allocator_by_name(args.allocator)
        allocation = allocator.allocate(args.elements, args.budget, latency)
        engine = MaxEngine(selector, OracleAnswerSource(truth, latency), rng)
        result = engine.run(truth, allocation)
        print(f"allocation: {allocation.round_budgets}")
    for record in result.records:
        print(
            f"  round {record.round_index}: {record.candidates_before} -> "
            f"{record.candidates_after} candidates, "
            f"{record.questions_posted} questions, {record.latency:.1f} s"
        )
    print(result.summary())
    return 0


def _cmd_simulate(args: argparse.Namespace) -> int:
    from repro.engine.simulation import (
        AggregateStats,
        aggregate,
        run_many_on_platform,
    )

    latency = _latency_from_args(args)
    platform_mode, fault_profile, retry_policy = _fault_options(args)
    if platform_mode:
        stats = AggregateStats.from_results(
            run_many_on_platform(
                args.elements,
                args.budget,
                allocator_by_name(args.allocator),
                selector_by_name(args.selector),
                latency,
                n_runs=args.runs,
                seed=args.seed,
                repetition=args.repetition,
                fault_profile=fault_profile,
                retry_policy=retry_policy,
            )
        )
        profile_name = args.faults if args.faults is not None else "none"
        print(
            f"platform mode: measured latency, faults={profile_name}, "
            f"retries={retry_policy.max_attempts if retry_policy else 1}"
        )
    else:
        stats = aggregate(
            n_elements=args.elements,
            budget=args.budget,
            allocator=allocator_by_name(args.allocator),
            selector=selector_by_name(args.selector),
            latency=latency,
            n_runs=args.runs,
            seed=args.seed,
        )
    print(f"configuration:        {args.allocator} + {args.selector}, "
          f"c0={args.elements}, b={args.budget}")
    print(f"runs:                 {stats.n_runs}")
    print(f"mean latency:         {stats.mean_latency:.1f} s "
          f"(std {stats.std_latency:.1f})")
    print(f"singleton rate:       {100 * stats.singleton_rate:.0f}%")
    print(f"accuracy:             {100 * stats.accuracy:.0f}%")
    print(f"mean questions used:  {stats.mean_questions:.1f}")
    print(f"mean rounds executed: {stats.mean_rounds:.1f}")
    return 0


def _serve_tick_hooks(args: argparse.Namespace):
    """The ``serve`` per-tick callback: dashboard and/or OpenMetrics file.

    Returns ``(on_tick, renderer)`` — both ``None`` when neither flag is
    given, so the plain path stays callback-free.
    """
    callbacks = []
    renderer = None
    if getattr(args, "dashboard", False):
        from repro.obs.dashboard import DashboardRenderer

        renderer = DashboardRenderer()
        callbacks.append(renderer.update)
    metrics_out = getattr(args, "metrics_out", None)
    if metrics_out is not None:
        from repro.obs.metrics import get_registry
        from repro.obs.openmetrics import write_openmetrics

        callbacks.append(
            lambda _sample: write_openmetrics(
                get_registry().snapshot(), metrics_out
            )
        )
    if not callbacks:
        return None, None

    def on_tick(sample) -> None:
        for callback in callbacks:
            callback(sample)

    return on_tick, renderer


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.service import (
        MaxScheduler,
        ServiceConfig,
        generate_workload,
        workload_by_name,
    )

    on_tick, renderer = _serve_tick_hooks(args)

    if args.resume:
        from repro.service import recover_scheduler

        if args.journal is None:
            raise InvalidParameterError("--resume requires --journal PATH")
        scheduler = recover_scheduler(args.journal)
        resumed_at = scheduler.ticks
        report = scheduler.run(on_tick=on_tick)
        if scheduler.journal is not None:
            scheduler.journal.close()
        if renderer is not None:
            renderer.finish()
        print(f"resumed {args.journal} from tick {resumed_at}")
        print(report.render(per_query=args.per_query))
        return 0

    latency = _latency_from_args(args)
    backends = None
    if args.backends is not None:
        from repro.crowd.multibackend import resolve_backends

        if args.faults is not None:
            raise InvalidParameterError(
                "--faults and --backends are mutually exclusive; attach "
                "per-backend fault profiles to the backend specs"
            )
        if args.breaker:
            raise InvalidParameterError(
                "--breaker and --backends are mutually exclusive; attach "
                "per-backend breakers to the backend specs"
            )
        backends = resolve_backends(args.backends)
    fault_profile = (
        fault_profile_by_name(args.faults) if args.faults is not None else None
    )
    attempts = args.retry
    if attempts is not None and attempts < 1:
        raise InvalidParameterError(
            f"--retry must be >= 1 attempt, got {attempts}"
        )
    if attempts is None and fault_profile is not None:
        attempts = 3
    retry_policy = (
        RetryPolicy(max_attempts=attempts, deadline=args.retry_deadline)
        if attempts is not None and attempts > 1
        else None
    )
    specs = generate_workload(
        workload_by_name(args.workload), seed=args.seed, n_queries=args.queries
    )
    hedge_config = None
    if args.hedge or args.hedge_after is not None:
        from repro.crowd.multibackend import HedgeConfig

        if backends is None:
            raise InvalidParameterError(
                "--hedge requires a multi-backend fleet; pass --backends"
            )
        hedge_config = HedgeConfig(hedge_after=args.hedge_after)
    brownout_config = None
    if args.brownout:
        from repro.service import BrownoutConfig

        brownout_config = BrownoutConfig(
            queue_wait_threshold=args.brownout_threshold
        )
    slo_config = None
    if args.slo or args.slo_bundle_dir is not None:
        from repro.obs.slo import default_slo_config

        slo_config = default_slo_config(bundle_dir=args.slo_bundle_dir)
    config = ServiceConfig(
        policy=args.scheduling,
        repetition=args.repetition,
        max_inflight_questions=args.max_inflight,
        max_active_queries=args.max_active,
        max_queue_depth=args.queue_depth,
        overload_policy=args.overload,
        routing=args.routing,
        default_deadline=args.default_deadline,
        hedge=hedge_config,
        brownout=brownout_config,
        slo=slo_config,
    )
    journal = None
    if args.journal is not None:
        from repro.service import SchedulerJournal

        journal = SchedulerJournal.create(
            args.journal, snapshot_interval=args.snapshot_interval
        )
    scheduler = MaxScheduler(
        specs,
        latency,
        seed=args.seed,
        config=config,
        fault_profile=fault_profile,
        retry_policy=retry_policy,
        breaker_config=_breaker_config(args),
        journal=journal,
        backends=backends,
    )
    report = scheduler.run(on_tick=on_tick)
    if journal is not None:
        journal.close()
    if renderer is not None:
        renderer.finish()
    profile_name = args.faults if args.faults is not None else "none"
    retries = (
        f"retry x{retry_policy.max_attempts}" if retry_policy else "no retries"
    )
    print(
        f"workload {args.workload} ({len(specs)} queries), "
        f"policy {args.scheduling}, faults={profile_name}, {retries}"
    )
    if backends is not None:
        print(
            f"backends: {args.backends} ({len(backends)} backend(s)), "
            f"routing {args.routing}"
        )
    if args.journal is not None:
        print(f"journal: {args.journal} (snapshot every "
              f"{args.snapshot_interval} tick(s))")
    print(report.render(per_query=args.per_query))
    if scheduler.router is not None:
        print("fleet:")
        for row in scheduler.router.summary():
            print(
                f"  {row['name']:<12} rounds {row['rounds']:>4}  "
                f"questions {row['questions_posted']:>6}  "
                f"outages {row['outages']:>3}  "
                f"cost ${row['cost']:.2f}  breaker {row['breaker']}"
            )
        if scheduler.router.hedge is not None:
            hedge = scheduler.router.hedge_summary()
            print(
                f"hedging: {hedge['hedges']} hedged round(s), "
                f"{hedge['wins']} mirror win(s), "
                f"{hedge['waste']} wasted posting(s)"
            )
    if scheduler.brownout is not None:
        print(
            f"brownout: level {scheduler.brownout.level}, "
            f"{scheduler.brownout.transitions} transition(s)"
        )
    if scheduler.slo is not None:
        health = scheduler.slo.health()
        print(
            f"slo: health {health.describe()}, "
            f"{scheduler.slo.fired_total} alert(s) fired, "
            f"{scheduler.slo.resolved_total} resolved"
        )
    return 0


def _cmd_health(args: argparse.Namespace) -> int:
    from repro.service import read_journal
    from repro.service.telemetry import (
        alert_transitions_from_records,
        samples_from_records,
    )

    contents = read_journal(args.journal)
    config = contents.header.get("config", {})
    if not isinstance(config.get("slo"), dict):
        print("health: ok (no SLO engine armed)")
        return 0
    samples = samples_from_records(contents.records)
    transitions = alert_transitions_from_records(contents.records)
    active = {}
    for transition in transitions:
        if transition.action == "fired":
            active[transition.rule] = transition
        else:
            active.pop(transition.rule, None)
    state = samples[-1].health if samples and samples[-1].health else "ok"
    suffix = f" ({', '.join(sorted(active))})" if active else ""
    print(f"health: {state}{suffix}")
    fired = sum(t.action == "fired" for t in transitions)
    resolved = len(transitions) - fired
    print(
        f"alerts: {len(active)} active, {fired} fired / {resolved} "
        f"resolved over {len(samples)} tick(s)"
    )
    for transition in transitions:
        print(
            f"  tick {transition.tick:>5}  {transition.action:<9}"
            f"{transition.severity:<9} {transition.rule} "
            f"(value {transition.value:.3f})"
        )
    if args.fail_degraded and state != "ok":
        return 1
    return 0


def _cmd_diagnose(args: argparse.Namespace) -> int:
    from repro.obs.flight import validate_bundle
    from repro.service import recover_scheduler

    scheduler = recover_scheduler(args.journal, resume_journal=False)
    if scheduler.flight is None:
        raise InvalidParameterError(
            f"journal {args.journal} was written without an SLO config; "
            "re-run serve with --slo to arm the flight recorder"
        )
    bundle = scheduler.write_debug_bundle(args.output)
    manifest = validate_bundle(bundle)
    print(
        f"wrote debug bundle to {bundle} "
        f"({manifest['ring_entries']} ring entries: "
        f"{', '.join(manifest['files'])})"
    )
    return 0


def _cmd_top(args: argparse.Namespace) -> int:
    from repro.obs.dashboard import DashboardRenderer
    from repro.service.telemetry import follow_samples, samples_from_journal

    renderer = DashboardRenderer()
    if args.follow:
        samples = follow_samples(
            args.journal, poll_interval=args.poll, timeout=args.timeout
        )
    else:
        samples = iter(samples_from_journal(args.journal))
    for sample in samples:
        renderer.update(sample)
    renderer.finish()
    return 0


def _cmd_metrics_export(args: argparse.Namespace) -> int:
    from repro.obs.openmetrics import render_openmetrics, write_openmetrics
    from repro.persistence import load_json

    payload = load_json(args.snapshot)
    if payload.get("kind") != "metrics_snapshot" or not isinstance(
        payload.get("snapshot"), dict
    ):
        raise InvalidParameterError(
            f"{args.snapshot} is not a metrics snapshot (expected the "
            f"--metrics-json output shape)"
        )
    snapshot = payload["snapshot"]
    if args.output is not None:
        write_openmetrics(snapshot, args.output)
        print(f"wrote OpenMetrics exposition to {args.output}")
    else:
        sys.stdout.write(render_openmetrics(snapshot))
    return 0


def _cmd_bench_check(args: argparse.Namespace) -> int:
    from repro.bench import compare_times, filter_times, load_bench_times

    baseline = load_bench_times(args.baseline)
    current = load_bench_times(args.current)
    if args.filter is not None:
        patterns = [token for token in args.filter.split(",") if token]
        baseline = filter_times(baseline, patterns)
        current = filter_times(current, patterns)
        if not current:
            raise InvalidParameterError(
                f"--filter {args.filter!r} matches no current bench"
            )
    comparison = compare_times(baseline, current, threshold=args.threshold)
    print(comparison.render())
    if comparison.ok:
        return 0
    if args.warn_only:
        print("(warn-only: regressions reported but not failing the run)")
        return 0
    return 1


def _cmd_bench_history(args: argparse.Namespace) -> int:
    from repro.bench import (
        append_history,
        current_git_sha,
        load_bench_times,
        load_history,
        make_history_entry,
        render_history,
    )

    times = load_bench_times(args.current)
    if not args.no_append:
        import datetime

        entry = make_history_entry(
            times,
            git_sha=current_git_sha(),
            timestamp=datetime.datetime.now(datetime.timezone.utc).isoformat(
                timespec="seconds"
            ),
        )
        append_history(entry, args.history)
        print(f"appended {len(times)} bench(es) to {args.history}")
    entries = load_history(args.history)
    baseline = None
    if args.baseline != "-":
        try:
            baseline = load_bench_times(args.baseline)
        except InvalidParameterError:
            print(f"(no baseline at {args.baseline}; delta column skipped)")
    print(render_history(
        entries, baseline, limit=args.limit, threshold=args.threshold
    ))
    return 0


def _cmd_explain(args: argparse.Namespace) -> int:
    from repro.obs.attribution import render_waterfall, waterfalls_from_records
    from repro.obs.export import read_jsonl
    from repro.obs.spans import assemble_spans, render_span_tree, span_roots

    if not Path(args.trace).is_file():
        raise InvalidParameterError(f"trace file not found: {args.trace}")
    records = read_jsonl(args.trace)
    waterfalls = waterfalls_from_records(records)
    if not waterfalls:
        print(f"{args.trace}: no query spans (was the run traced via "
              f"serve --trace?)")
        return 1
    if args.query_id is not None:
        if args.query_id not in waterfalls:
            known = ", ".join(str(q) for q in sorted(waterfalls))
            raise InvalidParameterError(
                f"query {args.query_id} not in {args.trace} "
                f"(trace has queries {known})"
            )
        selected = [args.query_id]
    else:
        selected = sorted(waterfalls)
    for query_id in selected:
        print(render_waterfall(waterfalls[query_id]))
        print()
    deadline_events = [
        r.event
        for r in records
        if r.event.kind == "DeadlineExceeded"
        and (args.query_id is None or r.event.query_id == args.query_id)
    ]
    if deadline_events:
        print("deadline breaches:")
        for event in deadline_events:
            overrun = (
                f"overran by {event.overrun:.1f}s"
                if event.overrun > 0
                else "stopped early"
            )
            print(
                f"  query {event.query_id}: {event.outcome} "
                f"(budget {event.deadline:.1f}s, {overrun})"
            )
        print()
    hedges = [r.event for r in records if r.event.kind == "RoundHedged"]
    if hedges and args.query_id is None:
        wins = sum(1 for e in hedges if e.winner == "mirror")
        print(
            f"hedged rounds: {len(hedges)} "
            f"({wins} won by the mirror backend)"
        )
        print()
    if args.tree:
        spans = assemble_spans(records)
        print("causal span tree:")
        for root in span_roots(spans):
            if args.query_id is not None and root.query_id not in (
                args.query_id, -1
            ):
                continue
            print("\n".join(render_span_tree(root, indent="  ")))
    return 0


def _cmd_profile(args: argparse.Namespace) -> int:
    from repro.core.tdp import solve_min_latency
    from repro.core.tdp_memo import solve_min_latency_memo
    from repro.obs.profiling import profiled, render_profile
    from repro.service.plan_cache import PlanCache, PlanKey

    latency = _latency_from_args(args)
    solvers = (
        ("frontier", "memo") if args.solver == "both" else (args.solver,)
    )
    if args.repeat < 1:
        raise InvalidParameterError(
            f"--repeat must be >= 1, got {args.repeat}"
        )
    cache = PlanCache()
    key = PlanKey(
        n_elements=args.elements,
        budget=args.budget,
        latency_key=repr(latency),
        repetition=1,
    )
    with profiled() as profiler:
        for _ in range(args.repeat):
            if "frontier" in solvers:
                plan = cache.get(key)
                if plan is None:
                    solved = solve_min_latency(
                        args.elements, args.budget, latency
                    )
                    from repro.core.allocation import Allocation

                    cache.put(key, Allocation.from_element_sequence(
                        solved.sequence, "tDP"
                    ))
            if "memo" in solvers:
                solve_min_latency_memo(args.elements, args.budget, latency)
    print(
        f"profiled {' + '.join(solvers)} on c0={args.elements} "
        f"b={args.budget} x{args.repeat}"
    )
    print(render_profile(profiler.snapshot()))
    return 0


def _cmd_chaos(args: argparse.Namespace) -> int:
    from repro.chaos import ChaosScenario, run_chaos, scenario_by_name

    if args.scenario is not None:
        if args.faults is not None or args.breaker:
            raise InvalidParameterError(
                "--scenario is a complete setup; it cannot be combined "
                "with --faults or --breaker"
            )
        scenario = scenario_by_name(args.scenario)
        if args.queries is not None:
            import dataclasses

            scenario = dataclasses.replace(scenario, n_queries=args.queries)
    else:
        attempts = args.retry
        if attempts is not None and attempts < 1:
            raise InvalidParameterError(
                f"--retry must be >= 1 attempt, got {attempts}"
            )
        if attempts is None and args.faults is not None:
            attempts = 3
        retry_policy = (
            RetryPolicy(max_attempts=attempts)
            if attempts is not None and attempts > 1
            else None
        )
        scenario = ChaosScenario(
            workload=args.workload,
            seed=args.seed,
            faults=args.faults,
            retry_policy=retry_policy,
            n_queries=args.queries,
            breaker=_breaker_config(args),
            snapshot_interval=args.snapshot_interval,
        )
    crash_points = None
    if args.crash_points is not None:
        try:
            crash_points = [
                int(token) for token in args.crash_points.split(",") if token
            ]
        except ValueError as error:
            raise InvalidParameterError(
                f"--crash-points must be comma-separated integers, got "
                f"{args.crash_points!r}"
            ) from error
    if args.sweep:
        report = run_chaos(scenario, sweep=True, journal_dir=args.journal_dir)
    elif crash_points is not None:
        report = run_chaos(
            scenario, crash_points=crash_points, journal_dir=args.journal_dir
        )
    else:
        report = run_chaos(
            scenario,
            n_crashes=args.crashes if args.crashes is not None else 3,
            journal_dir=args.journal_dir,
        )
    print(report.render())
    return 0 if report.all_equivalent else 1


def _cmd_experiment(args: argparse.Namespace) -> int:
    from repro.experiments.export import to_csv, to_json, to_report
    from repro.experiments.plotting import chart_for

    scale = scale_by_name(args.scale)
    names = available_experiments() if args.name == "all" else [args.name]
    tables = []
    for name in names:
        tables.extend(run_experiment(name, scale))

    if args.output_format == "json":
        rendered = to_json(tables)
    elif args.output_format == "markdown":
        rendered = to_report(tables, title=f"tDP reproduction ({scale.name})")
    elif args.output_format == "csv":
        rendered = "\n".join(to_csv(table) for table in tables)
    else:
        chunks = []
        for table in tables:
            chunks.append(table.to_text())
            if args.plot:
                chunks.append("")
                chunks.append(chart_for(table))
            chunks.append("")
        rendered = "\n".join(chunks)

    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(rendered)
        print(f"wrote {len(tables)} table(s) to {args.output}")
    else:
        print(rendered)
    return 0


def _cmd_list(_: argparse.Namespace) -> int:
    print("allocators:     ", ", ".join(available_allocators()))
    print("selectors:      ", ", ".join(available_selectors()))
    print("experiments:    ", ", ".join(available_experiments()))
    print("fault profiles: ", ", ".join(available_fault_profiles()))
    print("workloads:      ", ", ".join(available_workloads()))
    print("batch policies: ", ", ".join(available_policies()))
    return 0


def _configure_verbose_logging() -> None:
    handler = logging.StreamHandler(sys.stderr)
    handler.setFormatter(
        logging.Formatter("%(levelname).1s %(name)s: %(message)s")
    )
    package_logger = logging.getLogger("repro")
    package_logger.addHandler(handler)
    package_logger.setLevel(logging.DEBUG)


def _run_with_observability(
    args: argparse.Namespace, handler: Callable[[argparse.Namespace], int]
) -> int:
    """Wrap *handler* with tracing/metrics when the flags ask for them.

    Without ``--trace``/``--metrics`` (or on subcommands lacking them) the
    handler runs untouched — the ambient tracer stays the no-op
    ``NULL_TRACER`` and no registry reset happens.
    """
    trace_path = getattr(args, "trace", None)
    want_metrics = getattr(args, "metrics", False)
    metrics_json = getattr(args, "metrics_json", None)
    if trace_path is None and not want_metrics and metrics_json is None:
        return handler(args)
    from repro import obs

    if trace_path is not None:
        # Fail before the run, not after: a long experiment should not
        # complete only to lose its trace to an unwritable path.
        try:
            with open(trace_path, "a", encoding="utf-8"):
                pass
        except OSError as error:
            raise ReproError(f"cannot write trace to {trace_path}: {error}") from error

    registry = obs.get_registry()
    registry.reset()
    obs.declare_standard_metrics(registry)
    streaming = trace_path is not None and getattr(args, "stream_trace", False)
    if trace_path is None:
        tracer = obs.NULL_TRACER
    elif streaming:
        # Events go straight to disk as they happen; no in-memory buffer,
        # so a killed run keeps the flushed prefix of its trace.
        tracer = obs.RecordingTracer(
            sinks=(obs.StreamingJsonlSink(trace_path),), buffer=False
        )
    else:
        tracer = obs.RecordingTracer()
    with obs.use_tracer(tracer):
        exit_code = handler(args)
    if trace_path:
        if streaming:
            tracer.close_sinks()
            n_events = tracer.emitted
        else:
            n_events = obs.write_jsonl(tracer, trace_path)
        print(f"wrote {n_events} trace event(s) to {trace_path}")
    if metrics_json is not None:
        from repro.persistence import save_json

        save_json(
            {"kind": "metrics_snapshot", "snapshot": registry.snapshot()},
            metrics_json,
        )
        print(f"wrote metrics snapshot to {metrics_json}")
    if want_metrics:
        print()
        print("metrics snapshot:")
        print(obs.render_snapshot(registry.snapshot()))
    return exit_code


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = _build_parser()
    args = parser.parse_args(argv)
    if args.verbose:
        _configure_verbose_logging()
    handlers = {
        "allocate": _cmd_allocate,
        "solve": _cmd_solve,
        "simulate": _cmd_simulate,
        "serve": _cmd_serve,
        "top": _cmd_top,
        "health": _cmd_health,
        "diagnose": _cmd_diagnose,
        "metrics-export": _cmd_metrics_export,
        "bench-check": _cmd_bench_check,
        "bench-history": _cmd_bench_history,
        "explain": _cmd_explain,
        "profile": _cmd_profile,
        "chaos": _cmd_chaos,
        "experiment": _cmd_experiment,
        "list": _cmd_list,
    }
    try:
        handler = handlers[args.command]
        if args.command == "explain":
            # explain *consumes* --trace; the observability wrapper would
            # treat it as an output path and overwrite the input file.
            return handler(args)
        return _run_with_observability(args, handler)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
