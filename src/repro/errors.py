"""Exception hierarchy for the tDP reproduction library.

All library-specific exceptions derive from :class:`ReproError`, so callers
can catch a single base class.  Exceptions carry enough context in their
message to diagnose problems without a debugger.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class InvalidParameterError(ReproError, ValueError):
    """A caller supplied an argument outside its documented domain."""


class InfeasibleBudgetError(ReproError):
    """The question budget is too small to identify a MAX element.

    By Theorem 1 of the paper, finding the MAX of ``n`` elements requires a
    budget of at least ``n - 1`` pairwise comparisons: every non-MAX element
    must lose at least once.
    """

    def __init__(self, n_elements: int, budget: int) -> None:
        self.n_elements = n_elements
        self.budget = budget
        super().__init__(
            f"budget {budget} is infeasible for {n_elements} elements; "
            f"Theorem 1 requires budget >= n_elements - 1 = {n_elements - 1}"
        )


class InconsistentAnswersError(ReproError):
    """A set of answers contradicts itself (contains a preference cycle).

    The Reliable Worker Layer (Section 2.1 of the paper) is responsible for
    producing conflict-free answers; seeing this error means raw, unrepaired
    answers leaked past it.
    """


class PlatformError(ReproError):
    """The simulated crowdsourcing platform was used incorrectly."""


class PlatformOutageError(PlatformError):
    """A posted batch was lost to a whole-platform outage.

    Raised by the fault-injection layer (:mod:`repro.crowd.faults`) when an
    injected outage swallows an entire batch.  ``wasted_seconds`` is the
    simulated time the poster spent before concluding the batch was lost —
    retry layers add it to the round latency.
    """

    def __init__(self, message: str, wasted_seconds: float) -> None:
        self.wasted_seconds = wasted_seconds
        super().__init__(message)


class JournalCorruptError(ReproError):
    """A scheduler write-ahead journal cannot be recovered from.

    Raised by :mod:`repro.service.journal` when a journal file is missing,
    empty, has no parseable header, or contains no usable snapshot.  A
    merely *truncated tail* (the classic crash-mid-write shape) does not
    raise: recovery falls back to the last valid snapshot and replays
    deterministically from there.
    """


class ExperimentError(ReproError):
    """An experiment configuration is invalid or an experiment run failed."""
