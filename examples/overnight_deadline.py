"""Racing a deadline across the night: time-varying worker availability.

The introduction's scenario — "finding the best political-campaign response
to an opponent's attack one day before the elections" — has a hard
deadline, and worker supply is not constant: far fewer workers answer
questions at 3 AM.  This example runs the MAX operation on a collection of
drafted responses, starting in the evening, on a platform with a day/night
cycle, and shows how the same allocation takes much longer when its later
rounds drift into the night.

Run with:  python examples/overnight_deadline.py
"""

import numpy as np

from repro import LinearLatency, TDPAllocator
from repro.crowd import DayNightCycle, DiurnalPlatform, ReliableWorkerLayer
from repro.datasets import debate_responses
from repro.engine import MaxEngine, PlatformAnswerSource
from repro.selection import TournamentFormation

N_RESPONSES = 150
BUDGET = 1200


def run_starting_at(hour: float, seed: int = 11) -> float:
    """One full MAX run posted starting at *hour*; returns total latency."""
    rng = np.random.default_rng(seed)
    collection = debate_responses(N_RESPONSES, rng)
    truth = collection.ground_truth()
    platform = DiurnalPlatform(
        truth,
        rng,
        cycle=DayNightCycle(day_start_hour=8, day_end_hour=23,
                            night_activity=0.15),
        start_hour=hour,
    )
    latency_estimate = LinearLatency(delta=239.0, alpha=0.06)
    allocation = TDPAllocator().allocate(N_RESPONSES, BUDGET, latency_estimate)
    engine = MaxEngine(
        TournamentFormation(),
        PlatformAnswerSource(ReliableWorkerLayer(platform, rng)),
        rng,
    )
    result = engine.run(truth, allocation)
    print(
        f"  started {hour:5.1f}h: {result.total_latency / 60:6.1f} min over "
        f"{result.rounds_run} rounds -> winner: "
        f"{collection.label(result.winner)!r} "
        f"({'correct' if result.correct else 'WRONG'})"
    )
    return result.total_latency


def main() -> None:
    print(
        f"{N_RESPONSES} drafted responses, budget {BUDGET} questions, "
        f"workers mostly asleep 23:00-08:00\n"
    )
    print("Same tDP allocation, different posting times:")
    noon = run_starting_at(12.0)
    night = run_starting_at(23.5)
    print(
        f"\nStarting at 23:30 instead of noon costs "
        f"{(night - noon) / 60:.0f} extra minutes: the rounds run while "
        f"worker discovery is ~7x slower.  A deadline-aware deployment "
        f"should calibrate L(q) for the hours the rounds will actually run "
        f"in (Section 2.1's 'availability in different times during the "
        f"day')."
    )


if __name__ == "__main__":
    main()
