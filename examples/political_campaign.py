"""The paper's introduction scenario: pick the best campaign response.

One day before the election, a campaign has 1000 candidate responses to an
opponent's attack and crowdsources "which response is stronger?" questions.
The introduction contrasts two extremes:

* one question at a time — minimal cost (999 questions) but 999 rounds of
  waiting;
* everything in one round — a single wait, but C(1000, 2) = 499,500
  questions.

This example quantifies the whole spectrum under the MTurk-like latency
model and shows where tDP lands: a couple of carefully sized rounds.

Run with:  python examples/political_campaign.py
"""

from repro import LinearLatency, TDPAllocator
from repro.core.allocation import Allocation
from repro.core.tdp import solve_min_cost

N_RESPONSES = 1000
LATENCY = LinearLatency(delta=239.0, alpha=0.06)


def sequential_strategy() -> Allocation:
    """One comparison per round; the winner meets the next response."""
    sequence = tuple(range(N_RESPONSES, 0, -1))
    return Allocation.from_element_sequence(sequence, "one-at-a-time")


def single_round_strategy() -> Allocation:
    """All C(n, 2) questions at once."""
    return Allocation.from_element_sequence((N_RESPONSES, 1), "single-round")


def main() -> None:
    print(f"{N_RESPONSES} responses, latency model {LATENCY!r}\n")

    rows = []
    for allocation in (sequential_strategy(), single_round_strategy()):
        rows.append(
            (
                allocation.allocator_name,
                allocation.rounds,
                allocation.total_questions,
                allocation.predicted_latency(LATENCY),
            )
        )

    # tDP under three budgets: from barely feasible to luxurious.
    for budget in (1500, 10_000, 499_500):
        allocation = TDPAllocator().allocate(N_RESPONSES, budget, LATENCY)
        rows.append(
            (
                f"tDP (b={budget})",
                allocation.rounds,
                allocation.total_questions,
                allocation.predicted_latency(LATENCY),
            )
        )

    header = f"{'strategy':<18} {'rounds':>6} {'questions':>10} {'latency':>12}"
    print(header)
    print("-" * len(header))
    for name, rounds, questions, latency_s in rows:
        hours = latency_s / 3600.0
        print(
            f"{name:<18} {rounds:>6} {questions:>10,} "
            f"{latency_s:>9,.0f} s ({hours:.1f} h)"
        )
    print(
        "\ntDP turns days of sequential waiting into minutes, without "
        "needing the half-million-question budget of the single-round plan."
    )

    # The dual question a campaign with a hard deadline actually asks:
    # "the debate recap airs in 30 minutes — what is the CHEAPEST plan
    # that finishes in time?"
    print("\ncheapest plan per deadline (min-cost dual):")
    for deadline_minutes in (15, 20, 30, 120):
        try:
            plan = solve_min_cost(N_RESPONSES, deadline_minutes * 60, LATENCY)
        except Exception as error:
            print(f"  within {deadline_minutes:>3} min: impossible ({error})")
            continue
        print(
            f"  within {deadline_minutes:>3} min: {plan.questions_used:>6,} "
            f"questions over {plan.rounds} rounds "
            f"({plan.total_latency / 60:.1f} min predicted)"
        )


if __name__ == "__main__":
    main()
