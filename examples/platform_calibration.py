"""End-to-end platform calibration: estimate L(q), then allocate with it.

Mirrors Sections 6.1-6.2 of the paper: before running the MAX operation on
an unfamiliar platform, post probe batches of different sizes, fit a rough
linear latency model to the measurements, and hand that estimate to tDP.
The estimate only needs to capture the trend — tDP still beats the
latency-blind heuristics under the *real* (simulated) platform timing.

Run with:  python examples/platform_calibration.py
"""

import numpy as np

from repro import TDPAllocator, UniformHeavyFront, fit_linear_latency
from repro.crowd import GroundTruth, ReliableWorkerLayer, SimulatedPlatform
from repro.engine import MaxEngine, PlatformAnswerSource
from repro.experiments.fig11a import _random_batch
from repro.selection import TournamentFormation

N_ELEMENTS = 200
BUDGET = 1500
PROBE_SIZES = (10, 40, 160, 640)
PROBES_PER_SIZE = 5


def main() -> None:
    rng = np.random.default_rng(2015)
    truth = GroundTruth.random(N_ELEMENTS, rng)
    platform = SimulatedPlatform(truth, rng)

    # --- Section 6.1: estimate L(q) from probe batches -------------------
    samples = []
    for size in PROBE_SIZES:
        for _ in range(PROBES_PER_SIZE):
            batch = _random_batch(N_ELEMENTS, size, rng)
            samples.append((size, platform.post_batch(batch).completion_time))
    estimate = fit_linear_latency(samples)
    print(
        f"fitted estimate: L(q) = {estimate.delta:.0f} + "
        f"{estimate.alpha:.3f} * q   (from {len(samples)} probe batches)\n"
    )

    # --- Section 6.2: allocate with the estimate, run for real -----------
    for allocator in (TDPAllocator(), UniformHeavyFront()):
        allocation = allocator.allocate(N_ELEMENTS, BUDGET, estimate)
        run_rng = np.random.default_rng(7)
        run_truth = GroundTruth.random(N_ELEMENTS, run_rng)
        run_platform = SimulatedPlatform(run_truth, run_rng)
        engine = MaxEngine(
            TournamentFormation(),
            PlatformAnswerSource(ReliableWorkerLayer(run_platform, run_rng)),
            run_rng,
        )
        result = engine.run(run_truth, allocation)
        predicted = allocation.predicted_latency(estimate)
        print(f"--- {allocator.name} ---")
        print(f"round budgets:     {allocation.round_budgets}")
        print(f"predicted latency: {predicted:.0f} s (under the estimate)")
        print(f"measured latency:  {result.total_latency:.0f} s (platform)")
        print(result.summary())
        print()


if __name__ == "__main__":
    main()
