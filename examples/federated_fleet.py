"""Federating a workload across heterogeneous crowd platforms.

The paper models one platform with one latency function ``L(q)``.  A
real deployment can spread its rounds across *several* platforms — an
expensive boutique crowd that answers fast, a cheap bulk crowd that
takes its time, an internal pool with a hard per-round throughput cap.
This example runs the same multi-query workload:

1. on a single platform (the baseline),
2. on a three-backend fleet under each routing policy, comparing
   makespan against dollars spent,
3. on the same fleet with one backend suffering a sustained mid-run
   outage — its circuit breaker trips and the router reroutes its
   share to the survivors (the workload still completes).

Run with:  python examples/federated_fleet.py
"""

from repro.core.latency import mturk_car_latency
from repro.crowd.multibackend import backend_preset_by_name
from repro.service import MaxScheduler, ServiceConfig, generate_workload, workload_by_name

SEED = 0


def run(backends=None, routing="latency"):
    """One steady-workload run; returns (report, fleet summary rows)."""
    specs = generate_workload(workload_by_name("steady"), seed=SEED)
    scheduler = MaxScheduler(
        specs,
        mturk_car_latency(),
        seed=SEED,
        config=ServiceConfig(routing=routing),
        backends=backends,
    )
    report = scheduler.run()
    rows = scheduler.router.summary() if scheduler.router is not None else []
    return report, rows


def describe(tag, report, rows):
    cost = sum(row["cost"] for row in rows)
    print(f"  {tag:<28} makespan {report.makespan:8.1f} s   "
          f"completed {len(report.completed):2d}/{report.n_queries}   "
          f"cost ${cost:6.2f}")
    for row in rows:
        print(f"      {row['name']:<10} rounds {row['rounds']:3d}  "
              f"questions {row['questions_posted']:5d}  "
              f"outages {row['outages']}  breaker {row['breaker']}")


def main():
    print("single platform (no router):")
    report, rows = run()
    describe("direct", report, rows)

    print("\nthree-backend fleet ('trio' preset), per routing policy:")
    for policy in ("latency", "least-loaded", "weighted-price"):
        report, rows = run(backend_preset_by_name("trio"), routing=policy)
        describe(policy, report, rows)

    print("\nfailover: the balanced backend goes dark mid-run "
          "('outage-trio' preset):")
    report, rows = run(backend_preset_by_name("outage-trio"))
    describe("latency + breakers", report, rows)
    outages = sum(row["outages"] for row in rows)
    print(f"  -> {outages} outage(s) absorbed; every query still completed.")


if __name__ == "__main__":
    main()
