"""Crowdsourcing with imperfect workers: the Reliable Worker Layer at work.

The paper assumes error-free answers and delegates error handling to an RWL
(Section 2.1).  This example drops that assumption: workers confuse items
that are close in the true order (a distance-sensitive error model), and
the RWL repairs the damage through question repetition, majority voting and
cycle resolution — so the MAX operator above it still sees conflict-free
answers.

We compare the declared winner's true rank with and without repetition.

Run with:  python examples/noisy_workers.py
"""

import numpy as np

from repro import LinearLatency, TDPAllocator
from repro.crowd import (
    DistanceSensitiveError,
    GroundTruth,
    ReliableWorkerLayer,
    SimulatedPlatform,
)
from repro.engine import MaxEngine, PlatformAnswerSource
from repro.selection import TournamentFormation

N_ELEMENTS = 64
BUDGET = 400
N_TRIALS = 10


def trial(repetition: int, seed: int) -> int:
    """One noisy MAX run; returns the true rank of the declared winner."""
    rng = np.random.default_rng(seed)
    truth = GroundTruth.random(N_ELEMENTS, rng)
    platform = SimulatedPlatform(
        truth,
        rng,
        error_model=DistanceSensitiveError(base=0.35, scale=8.0),
    )
    rwl = ReliableWorkerLayer(platform, rng, repetition=repetition)
    latency = LinearLatency(delta=239.0, alpha=0.06)
    allocation = TDPAllocator().allocate(N_ELEMENTS, BUDGET, latency)
    engine = MaxEngine(
        TournamentFormation(), PlatformAnswerSource(rwl), rng
    )
    result = engine.run(truth, allocation)
    return truth.rank(result.winner)


def main() -> None:
    print(
        f"{N_ELEMENTS} elements, budget {BUDGET}, distance-sensitive worker "
        f"errors (35% on adjacent items)\n"
    )
    for repetition in (1, 3, 5):
        ranks = [trial(repetition, seed) for seed in range(N_TRIALS)]
        exact = sum(rank == 0 for rank in ranks)
        print(
            f"repetition={repetition}: winner's true rank per trial {ranks} "
            f"-> exact MAX in {exact}/{N_TRIALS} trials, "
            f"mean rank {np.mean(ranks):.1f}"
        )
    print(
        "\nMore repetition buys accuracy with the same number of rounds: the "
        "RWL folds the extra copies into each round's batch, so only the "
        "per-round batch size (and thus L(q)) grows."
    )


if __name__ == "__main__":
    main()
