"""Integrating a real crowdsourcing platform with MaxSession.

The batch engines pull answers from an internal source — fine for
simulation, but a real deployment posts questions to an external platform
(MTurk, an internal labeling tool, a Slack bot...) and gets answers back
whenever humans provide them.  ``MaxSession`` inverts control for exactly
that: the caller owns the loop.

Here the "external platform" is a tiny stand-in class with an explicit
HTTP-ish interface, so the integration pattern is visible end to end,
including checkpointing the evidence between rounds.

Run with:  python examples/real_platform_session.py
"""

import numpy as np

from repro import LinearLatency, TDPAllocator
from repro.crowd import GroundTruth
from repro.engine import MaxSession
from repro.persistence import answer_graph_to_dict, save_json
from repro.selection import TournamentFormation
from repro.types import Answer

N_ELEMENTS = 80
BUDGET = 500


class MyLabelingService:
    """Stand-in for your platform client (replace with real API calls)."""

    def __init__(self, seed: int) -> None:
        # In reality there is no ground truth object — humans are the
        # oracle.  The stand-in keeps one internally to produce answers.
        self._truth = GroundTruth.random(N_ELEMENTS, np.random.default_rng(seed))
        self.batches_posted = 0

    def post_comparison_tasks(self, pairs):
        """POST /tasks — returns a task id per pair (elided)."""
        self.batches_posted += 1
        return list(pairs)

    def wait_for_results(self, tasks):
        """GET /results — blocks until humans answered everything."""
        return [self._truth.answer(a, b) for a, b in tasks]


def main() -> None:
    latency_estimate = LinearLatency(delta=239.0, alpha=0.06)
    allocation = TDPAllocator().allocate(N_ELEMENTS, BUDGET, latency_estimate)
    print(f"plan: {allocation.round_budgets} "
          f"(candidate counts {allocation.element_sequence})\n")

    service = MyLabelingService(seed=21)
    session = MaxSession(
        allocation,
        TournamentFormation(),
        n_elements=N_ELEMENTS,
        rng=np.random.default_rng(0),
    )

    while not session.done:
        pending = session.pending_questions()
        print(
            f"round {session.round_index}: posting {len(pending)} questions "
            f"over {len(session.candidates)} candidates"
        )
        tasks = service.post_comparison_tasks(pending)
        answers = service.wait_for_results(tasks)
        session.submit(Answer(a.winner, a.loser) for a in answers)
        # Long-running deployments checkpoint the evidence between rounds:
        save_json(answer_graph_to_dict(session.evidence), "/tmp/evidence.json")

    print(
        f"\nMAX identified: element {session.winner} "
        f"({'singleton' if session.singleton_termination else 'by score'}) "
        f"after {session.rounds_executed} rounds / "
        f"{session.questions_posted} questions; "
        f"platform saw {service.batches_posted} batches"
    )


if __name__ == "__main__":
    main()
