"""Quickstart: find the MAX of a collection with an optimal budget split.

Runs the full pipeline on a synthetic collection of 100 items with a budget
of 600 pairwise questions:

1. describe the platform with a latency function L(q);
2. let tDP split the budget into rounds optimally;
3. execute the rounds with tournament question selection against an
   error-free oracle (the paper's main setting);
4. compare against the uniform Heavy-End baseline.

Run with:  python examples/quickstart.py
"""

import numpy as np

from repro import LinearLatency, TDPAllocator, UniformHeavyEnd
from repro.crowd import GroundTruth
from repro.engine import MaxEngine, OracleAnswerSource
from repro.selection import TournamentFormation

N_ELEMENTS = 100
BUDGET = 600


def main() -> None:
    # The latency function says: every round costs 239 s of fixed overhead
    # plus 0.06 s per question (the paper's MTurk estimate).  A good budget
    # split balances few rounds (less overhead) against wasted comparisons.
    latency = LinearLatency(delta=239.0, alpha=0.06)
    rng = np.random.default_rng(42)
    truth = GroundTruth.random(N_ELEMENTS, rng)

    for allocator in (TDPAllocator(), UniformHeavyEnd()):
        allocation = allocator.allocate(N_ELEMENTS, BUDGET, latency)
        engine = MaxEngine(
            selector=TournamentFormation(),
            source=OracleAnswerSource(truth, latency),
            rng=np.random.default_rng(7),
        )
        result = engine.run(truth, allocation)
        print(f"--- {allocator.name} ---")
        print(f"round budgets: {allocation.round_budgets}")
        for record in result.records:
            print(
                f"  round {record.round_index}: "
                f"{record.candidates_before} -> {record.candidates_after} "
                f"candidates ({record.questions_posted} questions, "
                f"{record.latency:.0f} s)"
            )
        print(result.summary())
        print()


if __name__ == "__main__":
    main()
