"""Top-3 retrieval: the paper's car collection, podium edition.

The paper's MAX operator finds the single most expensive car; this example
uses the library's top-k extension to find the podium (top 3), showing how
evidence reuse makes later phases nearly free: once the most expensive car
is identified, the runner-up pool is tiny — only the cars whose every
recorded loss was against the winner.

Run with:  python examples/car_podium.py
"""

import numpy as np

from repro import LinearLatency
from repro.datasets import car_collection
from repro.engine import MaxEngine, OracleAnswerSource, TopKEngine
from repro.core import TDPAllocator
from repro.selection import TournamentFormation

N_CARS = 200
K = 3
BUDGET = 1600


def main() -> None:
    rng = np.random.default_rng(5)
    collection = car_collection(N_CARS, rng)
    truth = collection.ground_truth()
    latency = LinearLatency(delta=239.0, alpha=0.06)

    engine = TopKEngine(
        TournamentFormation(),
        OracleAnswerSource(truth, latency),
        latency,
        rng,
    )
    result = engine.run(truth, K, BUDGET)

    print(f"top {K} of {N_CARS} cars, budget {BUDGET} questions\n")
    for place, element in enumerate(result.ranking, start=1):
        print(
            f"  {place}. {collection.label(element):<24} "
            f"${collection.values[element]:>10,.0f}"
        )
    print(
        f"\n{'correct podium' if result.correct else 'WRONG podium'} in "
        f"{result.total_questions} questions, "
        f"{result.total_latency / 60:.1f} minutes"
    )
    for phase, records in enumerate(result.phase_records, start=1):
        spent = sum(r.questions_posted for r in records)
        print(
            f"  phase {phase}: {len(records)} round(s), {spent} questions "
            f"({records[0].candidates_before} starting candidates)"
        )

    # Reference point: one plain MAX run costs almost as much as all three
    # phases together, because phases 2 and 3 reuse phase 1's evidence.
    single_rng = np.random.default_rng(5)
    single_truth = car_collection(N_CARS, single_rng).ground_truth()
    allocation = TDPAllocator().allocate(N_CARS, BUDGET, latency)
    single = MaxEngine(
        TournamentFormation(),
        OracleAnswerSource(single_truth, latency),
        single_rng,
    ).run(single_truth, allocation)
    print(
        f"\nfor comparison, a single MAX over the same collection: "
        f"{single.total_questions} questions, "
        f"{single.total_latency / 60:.1f} minutes"
    )


if __name__ == "__main__":
    main()
