"""Fixtures for the benchmark harness.

Run with:  pytest benchmarks/ --benchmark-only

Every ``bench_*`` test also writes a ``BENCH_<name>.json`` regression
artifact (see ``_harness.emit_artifact``); ``tdp-repro bench-check``
compares a directory of them against ``benchmarks/baseline.json``.
"""

from __future__ import annotations

import time

import pytest

from _harness import emit_artifact, run_and_report


@pytest.fixture
def report(benchmark):
    """Benchmark a runner once and print its result tables."""

    def _report(runner):
        return run_and_report(benchmark, runner)

    return _report


@pytest.fixture(autouse=True)
def bench_artifact(request):
    """Time each bench and emit its ``BENCH_<name>.json`` artifact.

    Wall time covers the whole test body (the measured runner plus its
    setup), which is exactly what a CI wall-clock regression gate cares
    about.  Works under ``--benchmark-disable`` too — pytest-benchmark
    then runs the body once untimed, but this fixture still times it.
    """
    from repro.obs.metrics import get_registry

    start = time.perf_counter()
    yield
    seconds = time.perf_counter() - start
    emit_artifact(
        request.node.name, seconds, metrics=get_registry().snapshot()
    )
