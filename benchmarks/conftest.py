"""Fixtures for the benchmark harness.

Run with:  pytest benchmarks/ --benchmark-only
"""

from __future__ import annotations

import pytest

from _harness import run_and_report


@pytest.fixture
def report(benchmark):
    """Benchmark a runner once and print its result tables."""

    def _report(runner):
        return run_and_report(benchmark, runner)

    return _report
