"""SLO engine and flight recorder benchmarks.

Two claims the observability layer has to back with numbers:

* the engine is free when disarmed and cheap when armed
  (``bench_slo_off_overhead`` — an unarmed run must be bit-identical to
  a config-free run, and an *armed* run must change nothing but the
  health stamp and stay within 2% wall-clock);
* an alert storm stays deterministic end to end
  (``bench_alert_storm`` — the chaos scenario fires and resolves
  alerts, and a second run reproduces the exact transition sequence).
"""

import dataclasses
import time

from repro.core.latency import mturk_car_latency
from repro.obs.slo import default_slo_config
from repro.service import (
    MaxScheduler,
    ServiceConfig,
    generate_workload,
    workload_by_name,
)

SEED = 0


def _run(config=None, workload="steady", seed=SEED):
    specs = generate_workload(workload_by_name(workload), seed=seed)
    scheduler = MaxScheduler(
        specs, mturk_car_latency(), seed=seed, config=config
    )
    start = time.perf_counter()
    report = scheduler.run()
    elapsed = time.perf_counter() - start
    return report, scheduler, elapsed


def bench_slo_off_overhead(benchmark):
    """Armed observation must cost <= 2% and never steer the scheduler."""

    armed_config = ServiceConfig(slo=default_slo_config())

    def compare():
        # Min-of-reps: the workload is deterministic, so scheduler noise
        # is strictly additive and min estimates the true cost.  The
        # armed delta is ~1% on an 11-tick run, so this takes more reps
        # than the other overhead benches to beat container jitter.
        plain_times, armed_times = [], []
        for _ in range(15):
            _, _, dt_plain = _run()
            _, _, dt_armed = _run(config=armed_config)
            plain_times.append(dt_plain)
            armed_times.append(dt_armed)
        return min(plain_times), min(armed_times)

    plain, armed = benchmark.pedantic(compare, rounds=1, iterations=1)
    report_plain, _, _ = _run()
    report_unarmed, _, _ = _run(config=ServiceConfig())
    report_armed, _, _ = _run(config=armed_config)
    ratio = armed / plain
    print()
    print("-- slo-armed overhead / steady --")
    print(f"plain: {plain:.3f} s   slo-armed: {armed:.3f} s   "
          f"ratio: {ratio:.3f}")
    # Disarmed is the pre-SLO path bit for bit; armed may only add the
    # health stamp on the report, never a scheduling difference.
    assert report_unarmed == report_plain
    assert dataclasses.replace(report_armed, health=None) == report_plain
    assert report_armed.health is not None
    assert ratio <= 1.02


def bench_alert_storm(benchmark):
    """The alert storm fires, resolves and replays deterministically."""
    from repro.chaos import build_scheduler, scenario_by_name

    def storm():
        scheduler = build_scheduler(scenario_by_name("alert-storm"))
        return scheduler.run(), scheduler

    report, scheduler = benchmark.pedantic(storm, rounds=1, iterations=1)
    engine = scheduler.slo
    print()
    print("-- alert-storm / 36 queries on outage-trio --")
    print(f"health: {engine.health().describe()}   "
          f"fired: {engine.fired_total}   resolved: {engine.resolved_total}")
    assert engine.fired_total > 0
    assert engine.resolved_total > 0
    assert report.health == engine.health()
    # Same seeds, same storm: the transition history is reproducible.
    replay, replayed = storm()
    assert replayed.slo.state_dict() == engine.state_dict()
    assert replay == report
