"""Shared helpers for the benchmark harness (imported by the bench files).

Each ``bench_fig*.py`` file regenerates one figure of the paper's evaluation
(Section 6): the benchmark measures how long the experiment takes, and the
resulting table — the same rows/series the paper plots — is printed so the
run doubles as a reproduction report.
"""

from __future__ import annotations

import os
from typing import Callable, List

from repro.experiments.config import scale_by_name
from repro.experiments.tables import ExperimentResult

#: Benchmarks default to the fast preset; set REPRO_BENCH_SCALE=full to
#: regenerate the figures at the paper's own workload sizes.
SCALE = scale_by_name(os.environ.get("REPRO_BENCH_SCALE", "small"))


def run_and_report(benchmark, runner: Callable[[], List[ExperimentResult]]):
    """Benchmark *runner* once and print the tables it produced."""
    tables = benchmark.pedantic(runner, rounds=1, iterations=1)
    print()
    for table in tables:
        print(table.to_text())
        print()
    return tables
