"""Shared helpers for the benchmark harness (imported by the bench files).

Each ``bench_fig*.py`` file regenerates one figure of the paper's evaluation
(Section 6): the benchmark measures how long the experiment takes, and the
resulting table — the same rows/series the paper plots — is printed so the
run doubles as a reproduction report.

Every bench additionally emits one ``BENCH_<name>.json`` regression
artifact (wall time, scale preset, compacted metrics snapshot, git sha)
into :data:`ARTIFACT_DIR` — the autouse fixture in ``conftest.py`` times
the test and calls :func:`emit_artifact`.  ``tdp-repro bench-check``
compares a directory of these artifacts against a committed baseline.
"""

from __future__ import annotations

import os
import re
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional

from repro.bench import current_git_sha, make_artifact, write_artifact
from repro.experiments.config import scale_by_name
from repro.experiments.tables import ExperimentResult

#: Benchmarks default to the fast preset; set REPRO_BENCH_SCALE=full to
#: regenerate the figures at the paper's own workload sizes.
SCALE = scale_by_name(os.environ.get("REPRO_BENCH_SCALE", "small"))

#: Where ``BENCH_<name>.json`` artifacts land; override with
#: REPRO_BENCH_ARTIFACTS (CI points it at an upload directory).
ARTIFACT_DIR = Path(
    os.environ.get(
        "REPRO_BENCH_ARTIFACTS", str(Path(__file__).parent / "artifacts")
    )
)


def emit_artifact(
    name: str, seconds: float, metrics: Optional[Dict[str, Any]] = None
) -> Path:
    """Write one bench's regression artifact; returns its path."""
    safe = re.sub(r"[^A-Za-z0-9_.-]", "_", name)
    artifact = make_artifact(
        safe,
        seconds,
        SCALE.name,
        metrics=metrics,
        git_sha=current_git_sha(Path(__file__).parent.parent),
    )
    return write_artifact(artifact, ARTIFACT_DIR)


def run_and_report(benchmark, runner: Callable[[], List[ExperimentResult]]):
    """Benchmark *runner* once and print the tables it produced."""
    tables = benchmark.pedantic(runner, rounds=1, iterations=1)
    print()
    for table in tables:
        print(table.to_text())
        print()
    return tables
