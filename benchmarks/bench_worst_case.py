"""Theorem 4 experimentally: worst-case latency per question selector.

Runs the same tDP allocation against the maxRC adversary under different
selectors.  Tournament formation is immune (each clique yields exactly one
winner); SPREAD's near-regular graphs admit large independent sets, so the
adversary keeps many candidates alive and the run fails to terminate.
"""

import numpy as np

from _harness import run_and_report
from repro.core.latency import mturk_car_latency
from repro.core.tdp import TDPAllocator
from repro.engine.adversarial import AdversarialMaxEngine
from repro.experiments.tables import ExperimentResult
from repro.selection.ct import ct25
from repro.selection.spread import Spread
from repro.selection.tournament import TournamentFormation

N_ELEMENTS = 60
BUDGET = 400


def _run():
    latency = mturk_car_latency()
    allocation = TDPAllocator().allocate(N_ELEMENTS, BUDGET, latency)
    table = ExperimentResult(
        name="worst-case-selectors",
        title="Adversarial (maxRC) execution of the same tDP allocation",
        columns=(
            "selector",
            "worst-case latency (s)",
            "singleton",
            "final candidates",
        ),
        notes=(
            f"c0={N_ELEMENTS}, b={BUDGET}, exact maxRC adversary; "
            f"allocation {allocation.round_budgets}"
        ),
    )
    for selector in (
        TournamentFormation(spend_leftover=False),
        Spread(),
        ct25(),
    ):
        engine = AdversarialMaxEngine(
            selector, latency, np.random.default_rng(3), mode="exact"
        )
        result = engine.run(N_ELEMENTS, allocation)
        final = (
            result.records[-1].candidates_after if result.records else N_ELEMENTS
        )
        table.add_row(
            selector.name,
            result.total_latency,
            result.singleton_termination,
            final,
        )
    return [table]


def bench_worst_case_selectors(benchmark):
    (table,) = run_and_report(benchmark, _run)
    rows = {row[0]: row for row in table.rows}
    assert rows["Tournament"][2] is True
    # No selector survives the adversary with less latency AND fewer
    # remaining candidates than tournament formation (Theorem 4).
    for name, row in rows.items():
        if name == "Tournament":
            continue
        assert (not row[2]) or row[1] >= rows["Tournament"][1] - 1e-9
