"""Multi-query service benchmarks: throughput and tail latency vs concurrency.

Not tied to a paper figure; these measure the :mod:`repro.service`
scheduler itself — how wall-clock cost and simulated p50/p95 latency
respond as the admission window (``max_active_queries``) widens over one
shared platform, and what the plan cache saves on a repeated-shape
workload.
"""

from repro.core.latency import mturk_car_latency
from repro.service import (
    MaxScheduler,
    ServiceConfig,
    generate_workload,
    workload_by_name,
)

SEED = 0


def _run(workload: str, **config_kwargs):
    specs = generate_workload(workload_by_name(workload), seed=SEED)
    config = ServiceConfig(**config_kwargs)
    return MaxScheduler(
        specs, mturk_car_latency(), seed=SEED, config=config
    ).run()


def _print_report(label, report):
    print()
    print(f"-- {label} --")
    print(report.render())


def bench_serve_burst_concurrency_sweep(benchmark):
    """60-query burst at widening admission windows (the headline sweep)."""

    def sweep():
        return [
            (max_active, _run("burst", max_active_queries=max_active))
            for max_active in (4, 16, 64)
        ]

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print()
    header = (
        f"{'max_active':>10} {'throughput/h':>12} {'p50 (s)':>10} "
        f"{'p95 (s)':>10} {'rounds':>7}"
    )
    print(header)
    for max_active, report in results:
        print(
            f"{max_active:>10} {report.throughput_per_hour:>12.1f} "
            f"{report.p50_latency:>10.1f} {report.p95_latency:>10.1f} "
            f"{report.shared_rounds:>7}"
        )
        assert len(report.finished) == report.n_queries
    # A wider admission window must not lose queries and should cut p95.
    narrow, wide = results[0][1], results[-1][1]
    assert wide.p95_latency <= narrow.p95_latency


def bench_serve_steady_default(benchmark):
    """The default steady workload under the default service config."""
    report = benchmark.pedantic(
        lambda: _run("steady"), rounds=1, iterations=1
    )
    _print_report("steady / defaults", report)
    assert len(report.finished) == report.n_queries


def bench_serve_plan_cache_repeated(benchmark):
    """Repeated-shape workload: the plan cache should absorb most solves."""
    report = benchmark.pedantic(
        lambda: _run("repeated"), rounds=1, iterations=1
    )
    _print_report("repeated / plan cache", report)
    assert report.cache_hit_rate > 0.5
