"""Figure 15: running time of computing a tDP allocation.

Regenerates the (c0, budget-multiple) timing grid.  Expected shape: the
time barely grows with the budget (the paper's pruning observation; our
Pareto solver is budget-insensitive by construction) and grows roughly
quadratically in the collection size.
"""

from _harness import SCALE
from repro.experiments import fig15


def bench_fig15_tdp_runtime(report):
    (table,) = report(lambda: fig15.run(SCALE))
    assert all(row[3] > 0 for row in table.rows)
