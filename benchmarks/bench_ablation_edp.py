"""Ablation: worst-case tDP vs the expected-case eDP extension.

The appendix of the paper notes that tDP under tournament formation is
*not* necessarily optimal for the average case.  eDP prices round
transitions at the expected (Lemma 4) survivor counts instead of the
guaranteed ones: it buys a little latency at the cost of the singleton-
termination guarantee.  This benchmark quantifies that trade-off.
"""

from _harness import SCALE, run_and_report
from repro.core.expected import ExpectedCaseAllocator
from repro.core.tdp import TDPAllocator
from repro.engine.simulation import aggregate
from repro.experiments.config import derive_seed, estimated_latency
from repro.experiments.tables import ExperimentResult
from repro.selection.tournament import TournamentFormation


def _run():
    latency = estimated_latency()
    table = ExperimentResult(
        name="ablation-edp",
        title="Worst-case (tDP) vs expected-case (eDP) budget allocation",
        columns=(
            "allocator",
            "mean latency (s)",
            "singleton %",
            "accuracy %",
            "mean questions",
        ),
        notes=(
            f"c0={SCALE.n_elements}, b={SCALE.budget}, tournament selection, "
            f"{SCALE.n_runs} runs"
        ),
    )
    for allocator in (TDPAllocator(), ExpectedCaseAllocator()):
        stats = aggregate(
            n_elements=SCALE.n_elements,
            budget=SCALE.budget,
            allocator=allocator,
            selector=TournamentFormation(),
            latency=latency,
            n_runs=SCALE.n_runs,
            seed=derive_seed(SCALE.seed, "edp", allocator.name),
        )
        table.add_row(
            allocator.name,
            stats.mean_latency,
            100.0 * stats.singleton_rate,
            100.0 * stats.accuracy,
            stats.mean_questions,
        )
    return [table]


def bench_ablation_expected_case(benchmark):
    (table,) = run_and_report(benchmark, _run)
    rows = {row[0]: row for row in table.rows}
    # tDP keeps its guarantee; eDP can only be at most as slow as tDP in
    # planned latency, so its measured mean must not be dramatically worse.
    assert rows["tDP"][2] == 100.0
    assert rows["eDP"][1] <= 1.2 * rows["tDP"][1]
