"""Micro-benchmarks of the hot building blocks.

Not tied to a paper figure; these keep an eye on the per-operation costs
the experiment sweeps are built on.
"""

import numpy as np
import pytest

from repro.core.questions import tournament_questions
from repro.crowd.ground_truth import GroundTruth
from repro.graphs.answer_graph import AnswerGraph
from repro.graphs.tournaments import form_tournaments, tournament_question_graph
from repro.selection.scoring import score_candidates


def bench_q_function_row(benchmark):
    """All Q(500, c') values — one tDP frontier row's worth of work."""

    def row():
        return [tournament_questions(500, target) for target in range(1, 500)]

    values = benchmark(row)
    assert values[0] == 124750


def bench_tournament_formation_500(benchmark):
    rng = np.random.default_rng(0)

    def build():
        groups = form_tournaments(list(range(500)), 50, rng)
        return tournament_question_graph(groups)

    questions = benchmark(build)
    assert len(questions) == tournament_questions(500, 50)


def bench_answer_graph_ingest(benchmark):
    """Recording one full round of answers (2250 questions, 500 elements)."""
    rng = np.random.default_rng(1)
    truth = GroundTruth.random(500, rng)
    groups = form_tournaments(list(range(500)), 50, rng)
    answers = [
        truth.answer(a, b) for a, b in tournament_question_graph(groups)
    ]

    def ingest():
        graph = AnswerGraph(range(500))
        graph.record_all(answers)
        return graph.remaining_candidates()

    survivors = benchmark(ingest)
    assert len(survivors) == 50


def bench_scoring_function(benchmark):
    """Algorithm 2 over a 500-element answer DAG."""
    rng = np.random.default_rng(2)
    truth = GroundTruth.random(500, rng)
    graph = AnswerGraph(range(500))
    groups = form_tournaments(list(range(500)), 50, rng)
    for a, b in tournament_question_graph(groups):
        graph.record(truth.answer(a, b))

    scores = benchmark(lambda: score_candidates(graph))
    assert sum(scores.values()) == pytest.approx(1.0)
