"""Crash-recovery benchmarks: journaling overhead and recovery cost.

Two questions the robustness work has to answer with numbers:

* what does the write-ahead journal cost while nothing goes wrong?
  (``bench_journal_overhead_steady`` — the acceptance bar is < 15 %
  wall-clock over the unjournaled steady preset);
* how expensive is a recovery, and how does it scale with workload size?
  (``bench_recover_after_midpoint_crash``).
"""

import time

from repro.chaos import ChaosScenario, build_scheduler, total_steps
from repro.service.journal import SchedulerJournal, recover_scheduler

SEED = 0


def _timed_run(scenario, journal_path=None, snapshot_interval=None):
    if journal_path is None:
        journal = None
    elif snapshot_interval is None:  # the journal's shipped default cadence
        journal = SchedulerJournal.create(journal_path)
    else:
        journal = SchedulerJournal.create(
            journal_path, snapshot_interval=snapshot_interval
        )
    scheduler = build_scheduler(scenario, journal=journal)
    start = time.perf_counter()
    report = scheduler.run()
    elapsed = time.perf_counter() - start
    if journal is not None:
        journal.close()
    return report, elapsed


def bench_journal_overhead_steady(benchmark, tmp_path):
    """Journaled vs unjournaled steady run — the < 15 % overhead bar."""
    scenario = ChaosScenario(workload="steady", seed=SEED)

    def compare():
        # Interleave the two variants, and compare the *fastest* rep of
        # each: the workload is deterministic, so scheduler noise is
        # strictly additive and min-of-reps estimates the true cost.  A
        # sum (or mean) would let one descheduled rep fake an overhead
        # regression.
        bare, journaled = [], []
        for rep in range(5):
            _, dt_bare = _timed_run(scenario)
            _, dt_journal = _timed_run(
                scenario, journal_path=tmp_path / f"steady-{rep}.jsonl"
            )
            bare.append(dt_bare)
            journaled.append(dt_journal)
        return min(bare), min(journaled)

    bare, journaled = benchmark.pedantic(compare, rounds=1, iterations=1)
    ratio = journaled / bare
    print()
    print("-- journal overhead / steady --")
    print(f"unjournaled: {bare:.3f} s   journaled: {journaled:.3f} s   "
          f"ratio: {ratio:.3f}")
    report_bare, _ = _timed_run(scenario)
    report_journal, _ = _timed_run(
        scenario, journal_path=tmp_path / "steady-equal.jsonl"
    )
    assert report_journal == report_bare
    assert ratio < 1.15, (
        f"journaling added {100 * (ratio - 1):.1f}% wall-clock "
        f"(acceptance bar is < 15%)"
    )


def bench_snapshot_interval_tradeoff(benchmark, tmp_path):
    """Journal size vs snapshot cadence on the steady preset."""
    scenario = ChaosScenario(workload="steady", seed=SEED)

    def sweep():
        rows = []
        for interval in (1, 5, 25):
            path = tmp_path / f"interval-{interval}.jsonl"
            _timed_run(scenario, journal_path=path, snapshot_interval=interval)
            rows.append((interval, path.stat().st_size))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print()
    print("-- journal size vs snapshot interval / steady --")
    print(f"{'interval':>8} {'bytes':>12}")
    for interval, size in rows:
        print(f"{interval:>8} {size:>12}")
    # Snapshots dominate journal size, so sparser must be strictly smaller.
    sizes = [size for _, size in rows]
    assert sizes == sorted(sizes, reverse=True)


def bench_recover_after_midpoint_crash(benchmark, tmp_path):
    """Recovery wall-clock after a mid-run kill, per workload preset."""

    def recover_all():
        rows = []
        for workload in ("smoke", "steady", "burst"):
            scenario = ChaosScenario(workload=workload, seed=SEED)
            crash_after = total_steps(scenario) // 2
            path = tmp_path / f"{workload}.jsonl"
            journal = SchedulerJournal.create(path)
            victim = build_scheduler(scenario, journal=journal)
            steps = 0
            while steps < crash_after and victim.step():
                steps += 1
            journal.close()
            start = time.perf_counter()
            recovered = recover_scheduler(path)
            recovery_time = time.perf_counter() - start
            report = recovered.run()
            if recovered.journal is not None:
                recovered.journal.close()
            rows.append(
                (workload, crash_after, recovery_time, report.n_queries)
            )
        return rows

    rows = benchmark.pedantic(recover_all, rounds=1, iterations=1)
    print()
    print("-- recovery cost after midpoint crash --")
    print(f"{'workload':>8} {'killed@':>8} {'recover (s)':>12} {'queries':>8}")
    for workload, crash_after, recovery_time, n_queries in rows:
        print(
            f"{workload:>8} {crash_after:>8} {recovery_time:>12.4f} "
            f"{n_queries:>8}"
        )
        assert recovery_time < 5.0
