"""Multi-backend routing benchmarks: policy tradeoffs and router overhead.

Three questions the federation layer has to answer with numbers:

* what do the routing policies actually trade?
  (``bench_routing_policy_sweep`` — makespan vs dollar cost of the same
  steady workload on the ``trio`` fleet under each policy);
* what does failover cost when a backend goes dark mid-run?
  (``bench_routing_failover`` — ``trio`` vs ``outage-trio``);
* does routing through a one-backend fleet cost anything?
  (``bench_router_solo_overhead`` — the bit-identity claim, plus the
  wall-clock ratio against direct posting).
"""

import time

from repro.core.latency import mturk_car_latency
from repro.crowd.multibackend import backend_preset_by_name
from repro.service import (
    MaxScheduler,
    ServiceConfig,
    generate_workload,
    workload_by_name,
)

SEED = 0


def _run(backends=None, routing="latency", workload="steady"):
    specs = generate_workload(workload_by_name(workload), seed=SEED)
    scheduler = MaxScheduler(
        specs,
        mturk_car_latency(),
        seed=SEED,
        config=ServiceConfig(routing=routing),
        backends=backends,
    )
    start = time.perf_counter()
    report = scheduler.run()
    elapsed = time.perf_counter() - start
    return report, scheduler, elapsed


def bench_routing_policy_sweep(benchmark):
    """Makespan vs dollar cost of each policy on the ``trio`` fleet."""

    def sweep():
        rows = []
        for policy in ("latency", "least-loaded", "weighted-price"):
            report, scheduler, _ = _run(
                backends=backend_preset_by_name("trio"), routing=policy
            )
            cost = sum(row["cost"] for row in scheduler.router.summary())
            rows.append((policy, report.makespan, cost, report.accuracy))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print()
    print("-- routing policy sweep / steady on trio --")
    print(f"{'policy':>15} {'makespan (s)':>13} {'cost ($)':>9} {'acc':>5}")
    for policy, makespan, cost, accuracy in rows:
        print(f"{policy:>15} {makespan:>13.1f} {cost:>9.2f} {accuracy:>5.0%}")
        assert accuracy == 1.0
    by_policy = {policy: cost for policy, _, cost, _ in rows}
    # weighted-price exists to spend less than the latency chaser.
    assert by_policy["weighted-price"] <= by_policy["latency"]


def bench_routing_failover(benchmark):
    """Failover cost: the same workload with one backend going dark."""

    def compare():
        clean, _, _ = _run(backends=backend_preset_by_name("trio"))
        stormy, scheduler, _ = _run(
            backends=backend_preset_by_name("outage-trio")
        )
        outages = sum(row["outages"] for row in scheduler.router.summary())
        return clean, stormy, outages

    clean, stormy, outages = benchmark.pedantic(
        compare, rounds=1, iterations=1
    )
    print()
    print("-- failover cost / steady on trio vs outage-trio --")
    print(f"clean makespan:  {clean.makespan:>10.1f} s")
    print(f"outage makespan: {stormy.makespan:>10.1f} s "
          f"({outages} backend outage(s) absorbed)")
    # The point of failover: the fleet finishes the whole workload anyway.
    assert len(stormy.completed) == len(clean.completed)


def bench_router_solo_overhead(benchmark):
    """A one-backend fleet must match direct posting bit for bit."""

    def compare():
        # Min-of-reps: the workload is deterministic, so scheduler noise
        # is strictly additive and min estimates the true cost.
        direct_times, routed_times = [], []
        for _ in range(3):
            _, _, dt_direct = _run()
            _, _, dt_routed = _run(backends=backend_preset_by_name("solo"))
            direct_times.append(dt_direct)
            routed_times.append(dt_routed)
        return min(direct_times), min(routed_times)

    direct, routed = benchmark.pedantic(compare, rounds=1, iterations=1)
    report_direct, _, _ = _run()
    report_routed, _, _ = _run(backends=backend_preset_by_name("solo"))
    ratio = routed / direct
    print()
    print("-- solo-fleet router overhead / steady --")
    print(f"direct: {direct:.3f} s   routed: {routed:.3f} s   "
          f"ratio: {ratio:.3f}")
    assert report_routed == report_direct
