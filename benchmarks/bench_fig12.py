"""Figure 12: question-selection strategies (latency + singleton rate).

Regenerates both panels: 12(a) mean time-to-MAX and 12(b) singleton-
termination percentage, for tDP/HF crossed with Tournament/CT25 over a
budget sweep.  The paper's key finding: Tournament formation singleton-
terminates in every run while CT25 trades termination for a little latency.
"""

from _harness import SCALE
from repro.experiments import fig12


def bench_fig12_selection_strategies(report):
    latency_table, singleton_table = report(lambda: fig12.run(SCALE))
    # Tournament formation achieves singleton termination in every run.
    assert all(
        rate == 100.0
        for rate in singleton_table.column("tDP + Tournament (%)")
    )
    assert all(
        rate == 100.0
        for rate in singleton_table.column("HF + Tournament (%)")
    )
