"""Section 6.8 findings grid: the allocator x selector cross product.

Regenerates the grid behind the paper's summarized findings (3)-(5) and
asserts the verdicts hold at the benchmark scale.
"""

from _harness import SCALE
from repro.experiments import findings68


def bench_findings68_grid(report):
    grid, verdicts = report(lambda: findings68.run(SCALE))
    assert len(grid.rows) == 12
    # Finding (5) is scale-independent for tournament selection.
    tournament_rows = [row for row in grid.rows if row[1] == "Tournament"]
    assert all(row[3] == 100.0 for row in tournament_rows)
