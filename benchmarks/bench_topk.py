"""Extension benchmark: top-k with evidence reuse vs independent MAX runs.

Quantifies what the top-k engine buys: once the MAX is identified, the
phase-2 candidate pool is just the winner's tournament runners-up, so
finding places 2..k costs a handful of questions instead of another full
sweep.
"""

import numpy as np

from _harness import run_and_report
from repro.core.latency import mturk_car_latency
from repro.core.tdp import TDPAllocator
from repro.crowd.ground_truth import GroundTruth
from repro.engine.max_engine import MaxEngine, OracleAnswerSource
from repro.engine.topk import TopKEngine
from repro.experiments.tables import ExperimentResult
from repro.selection.tournament import TournamentFormation

N_ELEMENTS = 200
K = 3
BUDGET = 1600
N_RUNS = 10


def _run():
    latency = mturk_car_latency()
    table = ExperimentResult(
        name="topk-vs-independent",
        title=f"Top-{K}: evidence-reusing phases vs {K} independent MAX runs",
        columns=(
            "strategy",
            "mean latency (s)",
            "mean questions",
            "correct %",
        ),
        notes=f"c0={N_ELEMENTS}, b={BUDGET}, {N_RUNS} runs",
    )

    reuse_latency, reuse_questions, reuse_correct = [], [], 0
    independent_latency, independent_questions = [], []
    for seed in range(N_RUNS):
        rng = np.random.default_rng((0x70, seed))
        truth = GroundTruth.random(N_ELEMENTS, rng)
        engine = TopKEngine(
            TournamentFormation(),
            OracleAnswerSource(truth, latency),
            latency,
            rng,
        )
        result = engine.run(truth, K, BUDGET)
        reuse_latency.append(result.total_latency)
        reuse_questions.append(result.total_questions)
        reuse_correct += result.correct

        # The naive alternative: K MAX runs from scratch (upper bound: each
        # run costs what one full MAX costs; candidates shrink by one).
        rng2 = np.random.default_rng((0x71, seed))
        total_latency = 0.0
        total_questions = 0
        for phase in range(K):
            remaining = N_ELEMENTS - phase
            truth_phase = GroundTruth.random(remaining, rng2)
            allocation = TDPAllocator().allocate(
                remaining, BUDGET // K, latency
            )
            run = MaxEngine(
                TournamentFormation(),
                OracleAnswerSource(truth_phase, latency),
                rng2,
            ).run(truth_phase, allocation)
            total_latency += run.total_latency
            total_questions += run.total_questions
        independent_latency.append(total_latency)
        independent_questions.append(total_questions)

    table.add_row(
        "top-k (evidence reuse)",
        sum(reuse_latency) / N_RUNS,
        sum(reuse_questions) / N_RUNS,
        100.0 * reuse_correct / N_RUNS,
    )
    table.add_row(
        f"{K} independent MAX runs",
        sum(independent_latency) / N_RUNS,
        sum(independent_questions) / N_RUNS,
        100.0,
    )
    return [table]


def bench_topk_evidence_reuse(benchmark):
    (table,) = run_and_report(benchmark, _run)
    reuse_row, independent_row = table.rows
    assert reuse_row[1] < independent_row[1]  # faster
    assert reuse_row[2] < independent_row[2]  # cheaper
    assert reuse_row[3] == 100.0  # and still correct
