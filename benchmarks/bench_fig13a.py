"""Figure 13(a): latency vs collection size at a fixed budget.

Regenerates the five allocator curves over the collection-size sweep
(125..2000 elements at full scale).  Expected shape: tDP lowest everywhere,
with uHE/uHF close only where their allocation happens to resemble tDP's.
"""

from _harness import SCALE
from repro.experiments import fig13


def bench_fig13a_collection_sizes(report):
    table = report(lambda: [fig13.run_collection_sweep(SCALE)])[0]
    assert len(table.rows) >= 2
