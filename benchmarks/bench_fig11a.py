"""Figure 11(a): estimating L(q) from platform measurements.

Regenerates the batch-size vs completion-time series and the least-squares
linear fit (the paper obtained L(q) = 239 + 0.06 q on MTurk).
"""

from _harness import SCALE
from repro.experiments import fig11a


def bench_fig11a_latency_estimation(report):
    (table,) = report(lambda: fig11a.run(SCALE))
    # Sanity on the reproduced shape: large batches must not be faster than
    # tiny ones once the worker pool saturates.
    measured = table.column("measured mean (s)")
    assert measured[-1] >= measured[0] * 0.8
