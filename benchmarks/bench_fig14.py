"""Figure 14: non-linear latency functions L(q) = 239 + 0.06 q^p.

Regenerates 14(a), the latency-vs-exponent sweep (the tDP advantage grows
to ~12x at p = 2 in the paper), and 14(b), the budget actually used by tDP
per exponent (stronger convexity caps the spend earlier, while the
heuristics always burn the whole budget).
"""

from _harness import SCALE
from repro.experiments import fig14


def bench_fig14a_exponent_sweep(report):
    table = report(lambda: [fig14.run_exponent_sweep(SCALE)])[0]
    first_row, last_row = table.rows[0], table.rows[-1]
    gap_first = min(first_row[2:]) / first_row[1]
    gap_last = min(last_row[2:]) / last_row[1]
    # The gap between tDP and the best heuristic grows with p.
    assert gap_last >= gap_first


def bench_fig14b_budget_usage(report):
    table = report(lambda: [fig14.run_budget_usage(SCALE)])[0]
    final = table.rows[-1]
    # Stronger convexity (p = 1.8, column 3) never uses more questions than
    # the linear case (p = 1.0, column 1) at the largest budget.
    assert final[3] <= final[1]
