"""Ablation: cross-tournament leftover spending in Tournament formation.

The paper's selector spends any budget left after forming tournaments on
random questions between different tournaments.  This ablation compares the
paper's behaviour against discarding the leftover: same latency model, same
allocations, measuring mean latency and mean questions used.
"""

from _harness import SCALE, run_and_report
from repro.core.tdp import TDPAllocator
from repro.core.heuristics import UniformHeavyEnd
from repro.engine.simulation import aggregate
from repro.experiments.config import derive_seed, estimated_latency
from repro.experiments.tables import ExperimentResult
from repro.selection.tournament import TournamentFormation


def _run():
    latency = estimated_latency()
    table = ExperimentResult(
        name="ablation-leftover",
        title="Tournament formation: spend vs discard leftover budget",
        columns=(
            "allocator",
            "variant",
            "mean latency (s)",
            "singleton %",
            "mean questions",
        ),
        notes=f"c0={SCALE.n_elements}, b={SCALE.budget}, {SCALE.n_runs} runs",
    )
    for allocator in (TDPAllocator(), UniformHeavyEnd()):
        for variant, spend in (("spend", True), ("discard", False)):
            stats = aggregate(
                n_elements=SCALE.n_elements,
                budget=SCALE.budget,
                allocator=allocator,
                selector=TournamentFormation(spend_leftover=spend),
                latency=latency,
                n_runs=SCALE.n_runs,
                seed=derive_seed(SCALE.seed, "leftover", allocator.name, spend),
            )
            table.add_row(
                allocator.name,
                variant,
                stats.mean_latency,
                100.0 * stats.singleton_rate,
                stats.mean_questions,
            )
    return [table]


def bench_ablation_leftover_spending(benchmark):
    (table,) = run_and_report(benchmark, _run)
    # Both variants must always singleton-terminate (the tournaments alone
    # guarantee it); spending leftovers can only post more questions.
    assert all(row[3] == 100.0 for row in table.rows)
