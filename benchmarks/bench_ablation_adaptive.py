"""Ablation: static tDP allocation vs adaptive per-round re-planning.

The adaptive engine re-solves MinLatency from the actual (candidates,
remaining budget) state after every round — the online use of the paper's
Figure 5 optimal-substructure insight.  Under pure tournament rounds the
two are provably identical; with an exploiting selector (CT25) the adaptive
engine re-invests windfall eliminations.
"""

import numpy as np

from _harness import SCALE, run_and_report
from repro.core.tdp import TDPAllocator
from repro.crowd.ground_truth import GroundTruth
from repro.engine.adaptive import AdaptiveMaxEngine
from repro.engine.max_engine import MaxEngine, OracleAnswerSource
from repro.experiments.config import estimated_latency
from repro.experiments.tables import ExperimentResult
from repro.selection.ct import ct25
from repro.selection.tournament import TournamentFormation


def _run():
    latency = estimated_latency()
    table = ExperimentResult(
        name="ablation-adaptive",
        title="Static tDP plan vs adaptive per-round re-planning",
        columns=(
            "selector",
            "engine",
            "mean latency (s)",
            "singleton %",
            "mean questions",
        ),
        notes=f"c0={SCALE.n_elements}, b={SCALE.budget}, {SCALE.n_runs} runs",
    )
    for selector_factory in (TournamentFormation, ct25):
        static_stats = _static(selector_factory, latency)
        adaptive_stats = _adaptive(selector_factory, latency)
        for engine_name, stats in (
            ("static", static_stats),
            ("adaptive", adaptive_stats),
        ):
            table.add_row(
                selector_factory().name,
                engine_name,
                stats["latency"],
                stats["singleton"],
                stats["questions"],
            )
    return [table]


def _static(selector_factory, latency):
    allocation = TDPAllocator().allocate(
        SCALE.n_elements, SCALE.budget, latency
    )
    return _collect(
        lambda truth, rng: MaxEngine(
            selector_factory(), OracleAnswerSource(truth, latency), rng
        ).run(truth, allocation)
    )


def _adaptive(selector_factory, latency):
    return _collect(
        lambda truth, rng: AdaptiveMaxEngine(
            selector_factory(), OracleAnswerSource(truth, latency), latency, rng
        ).run(truth, SCALE.budget)
    )


def _collect(run):
    latencies, singles, questions = [], [], []
    for seed in range(SCALE.n_runs):
        rng = np.random.default_rng((SCALE.seed, seed))
        truth = GroundTruth.random(SCALE.n_elements, rng)
        result = run(truth, rng)
        latencies.append(result.total_latency)
        singles.append(result.singleton_termination)
        questions.append(result.total_questions)
    runs = len(latencies)
    return {
        "latency": sum(latencies) / runs,
        "singleton": 100.0 * sum(singles) / runs,
        "questions": sum(questions) / runs,
    }


def bench_ablation_adaptive_replanning(benchmark):
    (table,) = run_and_report(benchmark, _run)
    rows = {(row[0], row[1]): row for row in table.rows}
    static = rows[("Tournament", "static")]
    adaptive = rows[("Tournament", "adaptive")]
    # Under pure tournaments, re-planning tracks the static optimum.
    assert adaptive[2] <= static[2] + 1e-6
    assert adaptive[3] == 100.0
