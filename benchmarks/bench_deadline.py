"""Deadline, hedging and brownout benchmarks.

Three claims the robustness layer has to back with numbers:

* the deadline machinery is free when unused
  (``bench_deadline_off_overhead`` — a default ``ServiceConfig`` with no
  deadlines must be bit-identical to the config-free run, and its
  wall-clock within 2%);
* hedged posting buys tail latency on a flaky fleet
  (``bench_hedged_tail_p99`` — outage-trio p99 with and without
  mirroring, plus what the mirrors cost in wasted postings);
* the full storm stays survivable
  (``bench_deadline_storm`` — the chaos scenario's attainment breakdown,
  with every admitted query reaching an explicit terminal state).
"""

import time

import numpy as np

from repro.core.latency import mturk_car_latency
from repro.crowd.multibackend import HedgeConfig, backend_preset_by_name
from repro.service import (
    DEADLINE_OUTCOMES,
    MaxScheduler,
    ServiceConfig,
    generate_workload,
    workload_by_name,
)

SEED = 0


def _run(config=None, backends=None, workload="steady", seed=SEED):
    specs = generate_workload(workload_by_name(workload), seed=seed)
    scheduler = MaxScheduler(
        specs,
        mturk_car_latency(),
        seed=seed,
        config=config,
        backends=backends,
    )
    start = time.perf_counter()
    report = scheduler.run()
    elapsed = time.perf_counter() - start
    return report, scheduler, elapsed


def _p99(report):
    return float(np.percentile([r.latency for r in report.results], 99))


def bench_deadline_off_overhead(benchmark):
    """Deadline-capable but idle must cost nothing and change nothing."""

    def compare():
        # Min-of-reps: the workload is deterministic, so scheduler noise
        # is strictly additive and min estimates the true cost.
        plain_times, armed_times = [], []
        for _ in range(7):
            _, _, dt_plain = _run()
            _, _, dt_armed = _run(config=ServiceConfig())
            plain_times.append(dt_plain)
            armed_times.append(dt_armed)
        return min(plain_times), min(armed_times)

    plain, armed = benchmark.pedantic(compare, rounds=1, iterations=1)
    report_plain, _, _ = _run()
    report_armed, _, _ = _run(config=ServiceConfig())
    ratio = armed / plain
    print()
    print("-- deadline-off overhead / steady --")
    print(f"plain: {plain:.3f} s   deadline-capable: {armed:.3f} s   "
          f"ratio: {ratio:.3f}")
    # The hedge-off / deadline-off path is the PR-8 path, bit for bit.
    assert report_armed == report_plain
    assert ratio <= 1.02


def bench_hedged_tail_p99(benchmark):
    """Mirroring predicted-slow rounds must buy p99 on a flaky fleet."""

    def compare():
        unhedged, _, _ = _run(
            config=ServiceConfig(routing="least-loaded"),
            backends=backend_preset_by_name("outage-trio"),
            seed=7,
        )
        hedged, scheduler, _ = _run(
            config=ServiceConfig(
                routing="least-loaded",
                hedge=HedgeConfig(hedge_after=250.0),
            ),
            backends=backend_preset_by_name("outage-trio"),
            seed=7,
        )
        return unhedged, hedged, scheduler.router.hedge_summary()

    unhedged, hedged, summary = benchmark.pedantic(
        compare, rounds=1, iterations=1
    )
    print()
    print("-- hedged tail latency / steady on outage-trio --")
    print(f"unhedged p99: {_p99(unhedged):>8.1f} s")
    print(f"hedged p99:   {_p99(hedged):>8.1f} s "
          f"({summary['hedges']} hedge(s), {summary['wins']} mirror "
          f"win(s), {summary['waste']} wasted posting(s))")
    # Hedging trades duplicate postings for tail latency; it must win
    # the tail and may never change an answer.
    assert _p99(hedged) < _p99(unhedged)
    assert hedged.accuracy == unhedged.accuracy
    assert summary["hedges"] > 0


def bench_deadline_storm(benchmark):
    """The chaos scenario end to end: nothing is ever silently lost."""
    from repro.chaos import build_scheduler, scenario_by_name

    def storm():
        scheduler = build_scheduler(scenario_by_name("deadline-storm"))
        return scheduler.run(), scheduler

    report, scheduler = benchmark.pedantic(storm, rounds=1, iterations=1)
    attainment = report.deadline_attainment
    print()
    print("-- deadline-storm attainment / 36 queries on outage-trio --")
    print("   ".join(f"{k}: {v}" for k, v in attainment.items()))
    print(f"hedges: {scheduler.router.hedges}   "
          f"brownout transitions: {scheduler.brownout.transitions}")
    assert len(report.results) == 36
    assert all(
        r.deadline_outcome in DEADLINE_OUTCOMES for r in report.results
    )
    assert sum(attainment.values()) == 36
