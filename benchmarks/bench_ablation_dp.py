"""Ablation: Pareto-frontier solver vs the literal Algorithm 1 memoization.

Both solve MinLatency exactly; DESIGN.md calls out the choice of the
production solver.  This benchmark times each on the same instance so the
speedup (and its growth with the budget) is visible in the report.
"""

import pytest

from repro.core.latency import mturk_car_latency
from repro.core.tdp import solve_min_latency
from repro.core.tdp_memo import solve_min_latency_memo

CASES = [
    (100, 400),
    (100, 1600),
    (200, 800),
]


@pytest.mark.parametrize("n_elements,budget", CASES)
def bench_pareto_solver(benchmark, n_elements, budget):
    latency = mturk_car_latency()
    plan = benchmark(lambda: solve_min_latency(n_elements, budget, latency))
    assert plan.sequence[0] == n_elements


@pytest.mark.parametrize("n_elements,budget", CASES)
def bench_memoized_solver(benchmark, n_elements, budget):
    latency = mturk_car_latency()
    plan = benchmark(
        lambda: solve_min_latency_memo(n_elements, budget, latency)
    )
    assert plan.sequence[0] == n_elements


def bench_solvers_agree(benchmark):
    """Correctness guard inside the benchmark suite: both solvers give the
    same optimal latency on a non-trivial instance."""
    latency = mturk_car_latency()

    def both():
        pareto = solve_min_latency(150, 900, latency)
        memo = solve_min_latency_memo(150, 900, latency)
        return pareto, memo

    pareto, memo = benchmark.pedantic(both, rounds=1, iterations=1)
    assert pareto.total_latency == pytest.approx(memo.total_latency)
