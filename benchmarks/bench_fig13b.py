"""Figure 13(b): latency vs available budget at a fixed collection size.

Regenerates the budget sweep (500..32000 questions at full scale).
Expected shape: tDP improves until extra questions stop helping and then
goes flat (it leaves budget unused); the heuristics keep spending and end up
two to four times slower at the largest budgets.
"""

from _harness import SCALE
from repro.experiments import fig13


def bench_fig13b_budget_sweep(report):
    table = report(lambda: [fig13.run_budget_sweep(SCALE)])[0]
    tdp = [row[1] for row in table.rows]
    # tDP never gets slower as the budget grows.
    assert all(later <= earlier + 1e-6 for earlier, later in zip(tdp, tdp[1:]))
