"""Ablation: RWL repetition factor under noisy workers.

DESIGN.md calls out the accuracy/latency trade-off of the Reliable Worker
Layer's question repetition.  This benchmark sweeps the repetition factor
against a fixed worker error rate and reports accuracy (declared winner ==
true MAX) and measured platform latency.
"""

import numpy as np

from _harness import run_and_report
from repro.core.latency import mturk_car_latency
from repro.core.tdp import TDPAllocator
from repro.crowd.error_models import UniformError
from repro.crowd.ground_truth import GroundTruth
from repro.crowd.platform import SimulatedPlatform
from repro.crowd.rwl import ReliableWorkerLayer
from repro.engine.max_engine import MaxEngine, PlatformAnswerSource
from repro.experiments.tables import ExperimentResult
from repro.selection.tournament import TournamentFormation

N_ELEMENTS = 32
BUDGET = 200
ERROR_RATE = 0.25
N_RUNS = 10
REPETITIONS = (1, 3, 5, 7)


def _run():
    table = ExperimentResult(
        name="ablation-rwl",
        title="RWL repetition: accuracy vs latency under noisy workers",
        columns=(
            "repetition",
            "accuracy %",
            "mean latency (s)",
            "questions posted per run",
        ),
        notes=(
            f"c0={N_ELEMENTS}, b={BUDGET}, uniform worker error "
            f"{ERROR_RATE:.0%}, {N_RUNS} runs"
        ),
    )
    allocation = TDPAllocator().allocate(N_ELEMENTS, BUDGET, mturk_car_latency())
    for repetition in REPETITIONS:
        hits = 0
        latencies = []
        posted = []
        for seed in range(N_RUNS):
            rng = np.random.default_rng((seed, repetition))
            truth = GroundTruth.random(N_ELEMENTS, rng)
            platform = SimulatedPlatform(
                truth, rng, error_model=UniformError(ERROR_RATE)
            )
            rwl = ReliableWorkerLayer(platform, rng, repetition=repetition)
            engine = MaxEngine(
                TournamentFormation(), PlatformAnswerSource(rwl), rng
            )
            result = engine.run(truth, allocation)
            hits += result.winner == truth.max_element
            latencies.append(result.total_latency)
            posted.append(platform.stats.questions_posted)
        table.add_row(
            repetition,
            100.0 * hits / N_RUNS,
            sum(latencies) / len(latencies),
            sum(posted) / len(posted),
        )
    return [table]


def bench_ablation_rwl_repetition(benchmark):
    (table,) = run_and_report(benchmark, _run)
    accuracies = table.column("accuracy %")
    # More repetition must not make accuracy dramatically worse; typically
    # it improves it substantially.
    assert accuracies[-1] >= accuracies[0]
