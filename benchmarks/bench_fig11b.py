"""Figure 11(b): real-time (simulated-platform) runs of all allocators.

Regenerates the solid-vs-striped bar data: measured platform time-to-MAX
next to the time predicted by the estimated L(q), for tDP, HE, HF, uHE and
uHF under tournament selection.
"""

from _harness import SCALE
from repro.experiments import fig11b


def bench_fig11b_realtime_runs(report):
    (table,) = report(lambda: fig11b.run(SCALE))
    assert table.column("allocator") == ["tDP", "HE", "HF", "uHE", "uHF"]
    assert all(value > 0 for value in table.column("real time (s)"))
