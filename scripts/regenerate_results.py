#!/usr/bin/env python
"""Regenerate the full-scale result files referenced by EXPERIMENTS.md.

Writes:
  full_results.txt      — every fig11a..fig15 table at paper scale
  findings68_full.txt   — the Section 6.8 allocator x selector grid

Run from the repository root:  python scripts/regenerate_results.py
Takes a few minutes (the Figure 12/13/14 sweeps run 100 simulations per
point, as in the paper).
"""

from __future__ import annotations

import sys
import time
from pathlib import Path

from repro.experiments.config import FULL
from repro.experiments.runner import available_experiments, run_experiment


def main() -> int:
    root = Path(__file__).resolve().parent.parent
    figure_names = [n for n in available_experiments() if n.startswith("fig")]

    start = time.time()
    with open(root / "full_results.txt", "w", encoding="utf-8") as handle:
        for name in figure_names:
            print(f"running {name} ...", flush=True)
            for table in run_experiment(name, FULL):
                handle.write(table.to_text() + "\n\n")
                handle.flush()
        handle.write(f"total wall time: {time.time() - start:.1f}s\n")

    print("running findings68 ...", flush=True)
    with open(root / "findings68_full.txt", "w", encoding="utf-8") as handle:
        for table in run_experiment("findings68", FULL):
            handle.write(table.to_text() + "\n\n")

    print(f"done in {time.time() - start:.1f}s")
    return 0


if __name__ == "__main__":
    sys.exit(main())
