#!/usr/bin/env python
"""Repo-hygiene gate: fail CI on tracked bytecode and orphaned packages.

Checks, in order:

1. no tracked ``__pycache__`` directories or ``*.pyc``/``*.pyo`` files
   (``git ls-files`` is the source of truth — untracked local bytecode is
   fine, committing it is not);
2. no orphaned package directories under ``src/``: a directory that
   contains only bytecode (or nothing at all) is a leftover from a
   deleted module and silently shadows imports;
3. every directory under ``src/`` holding ``.py`` files is a real
   package (has ``__init__.py``), so nothing is invisible to tooling
   that walks packages.

Exit status 0 when clean, 1 with one line per violation otherwise.
"""

from __future__ import annotations

import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC_ROOT = REPO_ROOT / "src"
BYTECODE_SUFFIXES = {".pyc", ".pyo"}


def tracked_bytecode() -> list[str]:
    """Tracked paths that are bytecode or live inside a __pycache__."""
    listing = subprocess.run(
        ["git", "ls-files"],
        cwd=REPO_ROOT,
        capture_output=True,
        text=True,
        check=True,
    ).stdout.splitlines()
    return [
        path
        for path in listing
        if "__pycache__" in Path(path).parts
        or Path(path).suffix in BYTECODE_SUFFIXES
    ]


def _is_bytecode_only(directory: Path) -> bool:
    """True when *directory* holds nothing but bytecode (or is empty)."""
    for entry in directory.rglob("*"):
        if entry.is_dir():
            continue
        if entry.suffix in BYTECODE_SUFFIXES:
            continue
        return False
    return True


def orphaned_directories() -> list[str]:
    """Directories under src/ that only exist to hold stale bytecode."""
    orphans = []
    for directory in sorted(SRC_ROOT.rglob("*")):
        if not directory.is_dir() or directory.name == "__pycache__":
            continue
        if any(part == "__pycache__" for part in directory.parts):
            continue
        if _is_bytecode_only(directory):
            orphans.append(str(directory.relative_to(REPO_ROOT)))
    return orphans


def packages_missing_init() -> list[str]:
    """src/ directories holding .py files without an __init__.py."""
    missing = []
    for directory in sorted(SRC_ROOT.rglob("*")):
        if not directory.is_dir() or directory.name == "__pycache__":
            continue
        if any(part == "__pycache__" for part in directory.parts):
            continue
        has_modules = any(directory.glob("*.py"))
        if has_modules and not (directory / "__init__.py").exists():
            missing.append(str(directory.relative_to(REPO_ROOT)))
    return missing


def main() -> int:
    problems = []
    for path in tracked_bytecode():
        problems.append(f"tracked bytecode: {path}")
    for path in orphaned_directories():
        problems.append(
            f"orphaned directory (bytecode only — delete it): {path}"
        )
    for path in packages_missing_init():
        problems.append(f"package missing __init__.py: {path}")
    if problems:
        for problem in problems:
            print(problem, file=sys.stderr)
        print(
            f"hygiene check failed with {len(problems)} problem(s)",
            file=sys.stderr,
        )
        return 1
    print("hygiene check passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
